#include "core/params_io.hpp"

#include <fstream>
#include <sstream>
#include <vector>

#include "util/error.hpp"

namespace lmo::core {

namespace {
std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

std::vector<double> parse_row(const std::string& value, int lineno) {
  std::vector<double> row;
  std::istringstream is(value);
  std::string cell;
  while (std::getline(is, cell, ',')) {
    try {
      row.push_back(std::stod(trim(cell)));
    } catch (const std::invalid_argument&) {
      throw Error("params line " + std::to_string(lineno) + ": bad number '" +
                  cell + "'");
    }
  }
  return row;
}

void emit_row(std::ostringstream& os, const char* key,
              const std::vector<double>& row) {
  os << key << " = ";
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i) os << ", ";
    os << row[i];
  }
  os << "\n";
}
}  // namespace

std::string to_text(const LmoParams& params) {
  params.validate();
  const int n = params.size();
  std::ostringstream os;
  os.precision(17);
  os << "[lmo]\n";
  os << "size = " << n << "\n";
  emit_row(os, "C", params.C);
  emit_row(os, "t", params.t);
  for (int i = 0; i < n; ++i) {
    std::vector<double> lrow, brow;
    for (int j = 0; j < n; ++j) {
      lrow.push_back(i == j ? 0.0 : params.L(i, j));
      brow.push_back(i == j ? 0.0 : params.inv_beta(i, j));
    }
    emit_row(os, "L", lrow);
    emit_row(os, "inv_beta", brow);
  }
  return os.str();
}

LmoParams lmo_params_from_text(const std::string& text) {
  LmoParams p;
  std::istringstream is(text);
  std::string line;
  int lineno = 0;
  int n = -1;
  int l_rows = 0, b_rows = 0;
  while (std::getline(is, line)) {
    ++lineno;
    line = trim(line);
    if (line.empty() || line[0] == '#' || line[0] == '[') continue;
    const auto eq = line.find('=');
    LMO_CHECK_MSG(eq != std::string::npos,
                  "params line " + std::to_string(lineno) + ": missing '='");
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (key == "size") {
      n = std::stoi(value);
      LMO_CHECK_MSG(n >= 2, "params: size must be >= 2");
      p.L = models::PairTable(n);
      p.inv_beta = models::PairTable(n);
      continue;
    }
    LMO_CHECK_MSG(n > 0, "params: 'size' must come first");
    const auto row = parse_row(value, lineno);
    LMO_CHECK_MSG(int(row.size()) == n,
                  "params line " + std::to_string(lineno) + ": expected " +
                      std::to_string(n) + " values");
    if (key == "C") {
      p.C = row;
    } else if (key == "t") {
      p.t = row;
    } else if (key == "L") {
      LMO_CHECK_MSG(l_rows < n, "params: too many L rows");
      for (int j = 0; j < n; ++j)
        if (j != l_rows) p.L(l_rows, j) = row[std::size_t(j)];
      ++l_rows;
    } else if (key == "inv_beta") {
      LMO_CHECK_MSG(b_rows < n, "params: too many inv_beta rows");
      for (int j = 0; j < n; ++j)
        if (j != b_rows) p.inv_beta(b_rows, j) = row[std::size_t(j)];
      ++b_rows;
    } else {
      LMO_CHECK_MSG(false, "params: unknown key " + key);
    }
  }
  LMO_CHECK_MSG(l_rows == n && b_rows == n, "params: missing matrix rows");
  p.validate();
  return p;
}

std::string to_text(const GatherEmpirical& emp) {
  std::ostringstream os;
  os.precision(17);
  os << "[gather_empirical]\n";
  os << "m1 = " << emp.m1 << "\n";
  os << "m2 = " << emp.m2 << "\n";
  os << "linear_prob_at_m1 = " << emp.linear_prob_at_m1 << "\n";
  os << "linear_prob_at_m2 = " << emp.linear_prob_at_m2 << "\n";
  for (const auto& mode : emp.escalation_modes)
    os << "mode = " << mode.value << ", " << mode.count << ", "
       << mode.frequency << "\n";
  return os.str();
}

GatherEmpirical gather_empirical_from_text(const std::string& text) {
  GatherEmpirical emp;
  std::istringstream is(text);
  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    line = trim(line);
    if (line.empty() || line[0] == '#' || line[0] == '[') continue;
    const auto eq = line.find('=');
    LMO_CHECK_MSG(eq != std::string::npos,
                  "empirical line " + std::to_string(lineno) + ": missing '='");
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (key == "m1") emp.m1 = std::stoll(value);
    else if (key == "m2") emp.m2 = std::stoll(value);
    else if (key == "linear_prob_at_m1") emp.linear_prob_at_m1 = std::stod(value);
    else if (key == "linear_prob_at_m2") emp.linear_prob_at_m2 = std::stod(value);
    else if (key == "mode") {
      const auto row = parse_row(value, lineno);
      LMO_CHECK_MSG(row.size() == 3, "empirical: mode needs 3 values");
      emp.escalation_modes.push_back(
          {row[0], std::size_t(row[1]), row[2]});
    } else {
      LMO_CHECK_MSG(false, "empirical: unknown key " + key);
    }
  }
  return emp;
}

void save_params(const LmoParams& params, const GatherEmpirical& emp,
                 const std::string& path) {
  std::ofstream os(path);
  LMO_CHECK_MSG(os.good(), "cannot open " + path + " for writing");
  os << to_text(params) << to_text(emp);
  LMO_CHECK_MSG(os.good(), "write failed: " + path);
}

LoadedParams load_params(const std::string& path) {
  std::ifstream is(path);
  LMO_CHECK_MSG(is.good(), "cannot open " + path);
  std::ostringstream buffer;
  buffer << is.rdbuf();
  const std::string text = buffer.str();
  // Split at the [gather_empirical] header; the first part is the model.
  const auto pos = text.find("[gather_empirical]");
  LoadedParams out;
  out.params = lmo_params_from_text(
      pos == std::string::npos ? text : text.substr(0, pos));
  if (pos != std::string::npos)
    out.empirical = gather_empirical_from_text(text.substr(pos));
  return out;
}

namespace {
obs::Json table_json(const models::PairTable& t) {
  obs::Json rows = obs::Json::array();
  for (int i = 0; i < t.size(); ++i) {
    obs::Json row = obs::Json::array();
    for (int j = 0; j < t.size(); ++j) row.push_back(t(i, j));
    rows.push_back(std::move(row));
  }
  return rows;
}
}  // namespace

obs::Json params_json(const LmoParams& params) {
  obs::Json out = obs::Json::object();
  out["size"] = params.size();
  obs::Json c = obs::Json::array(), t = obs::Json::array();
  for (const double v : params.C) c.push_back(v);
  for (const double v : params.t) t.push_back(v);
  out["C"] = std::move(c);
  out["t"] = std::move(t);
  out["L"] = table_json(params.L);
  out["inv_beta"] = table_json(params.inv_beta);
  return out;
}

obs::Json empirical_json(const GatherEmpirical& emp) {
  obs::Json out = obs::Json::object();
  out["m1"] = emp.m1;
  out["m2"] = emp.m2;
  obs::Json modes = obs::Json::array();
  for (const stats::Mode& m : emp.escalation_modes) {
    obs::Json e = obs::Json::object();
    e["value"] = m.value;
    e["count"] = m.count;
    e["frequency"] = m.frequency;
    modes.push_back(std::move(e));
  }
  out["escalation_modes"] = std::move(modes);
  out["linear_prob_at_m1"] = emp.linear_prob_at_m1;
  out["linear_prob_at_m2"] = emp.linear_prob_at_m2;
  return out;
}

}  // namespace lmo::core
