#include "core/empirical.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace lmo::core {

double GatherEmpirical::linear_probability(Bytes m) const {
  if (m <= m1) return 1.0;
  if (m >= m2) return 0.0;  // large messages follow the sum branch instead
  LMO_CHECK(m2 > m1);
  const double w = double(m - m1) / double(m2 - m1);
  return (1.0 - w) * linear_prob_at_m1 + w * linear_prob_at_m2;
}

double GatherEmpirical::expected_escalation(Bytes m) const {
  if (!in_band(m) || escalation_modes.empty()) return 0.0;
  double mean = 0.0, total_freq = 0.0;
  for (const auto& mode : escalation_modes) {
    mean += mode.value * mode.frequency;
    total_freq += mode.frequency;
  }
  if (total_freq > 0) mean /= total_freq;
  return (1.0 - linear_probability(m)) * mean;
}

double GatherEmpirical::max_escalation() const {
  double mx = 0.0;
  for (const auto& mode : escalation_modes) mx = std::max(mx, mode.value);
  return mx;
}

double ScatterEmpirical::extra(Bytes m) const {
  if (!detected || leap_threshold <= 0 || m < leap_threshold) return 0.0;
  return leap_s * double(m / leap_threshold);
}

}  // namespace lmo::core
