// Model-based optimization of collective operations (paper Figs. 6 and 7).
//
// Two applications of an accurate model:
//  * algorithm selection — pick linear vs. binomial scatter per message
//    size (Fig. 6 shows Hockney picking wrong and LMO picking right);
//  * the optimized gather — split medium-size gathers into chunked series
//    that stay out of the escalation band (Fig. 7, "10 times better
//    performance").
#pragma once

#include <vector>

#include "core/empirical.hpp"
#include "core/lmo_model.hpp"
#include "core/predictions.hpp"
#include "models/hockney.hpp"
#include "util/bytes.hpp"

namespace lmo::core {

enum class ScatterAlgorithm { kLinear, kBinomial };

/// LMO-based selection: compare eq. (4) with the binomial recursion.
[[nodiscard]] ScatterAlgorithm choose_scatter_algorithm(const LmoParams& p,
                                                        int root, Bytes m);

/// The same decision a heterogeneous-Hockney user would make, taking the
/// better of its two flat-tree readings (the paper uses the sequential
/// one, Table II) against its binomial recursion.
[[nodiscard]] ScatterAlgorithm choose_scatter_algorithm_hockney(
    const models::HeteroHockney& h, int root, Bytes m);

struct SplitGatherPlan {
  bool split = false;   ///< false: run the native gather unmodified
  Bytes chunk = 0;      ///< chunk size for the series
  int series = 0;       ///< number of gathers in the series
  double predicted_native = 0.0;     ///< expected native time (escalations in)
  double predicted_split = 0.0;      ///< predicted series time
};

/// Plan the Fig. 7 optimization: if m sits in the escalation band and the
/// chunked series is predicted cheaper than the expected (escalation-
/// weighted) native gather, split into chunks of at most m1.
[[nodiscard]] SplitGatherPlan plan_optimized_gather(const LmoParams& p,
                                                    const GatherEmpirical& emp,
                                                    int root, Bytes m);

}  // namespace lmo::core
