#include "core/predictions.hpp"

#include <algorithm>
#include <map>
#include <queue>
#include <utility>

#include "trees/binomial.hpp"
#include "trees/mapping.hpp"
#include "util/error.hpp"

namespace lmo::core {

namespace {
/// (n-1)(C_r + M t_r): the root's serialized message processing.
double root_serial(const LmoParams& p, int root, Bytes m) {
  return double(p.size() - 1) *
         (p.C[std::size_t(root)] + double(m) * p.t[std::size_t(root)]);
}

/// max_i / sum_i of (L_ri + M/beta_ri + C_i + M t_i).
struct Tail {
  double max = 0.0;
  double sum = 0.0;
};
Tail remote_tail(const LmoParams& p, int root, Bytes m) {
  Tail tail;
  for (int i = 0; i < p.size(); ++i) {
    if (i == root) continue;
    const double term =
        p.L(root, i) + double(m) * p.inv_beta(root, i) +
        p.C[std::size_t(i)] + double(m) * p.t[std::size_t(i)];
    tail.max = std::max(tail.max, term);
    tail.sum += term;
  }
  return tail;
}
}  // namespace

double linear_scatter_time(const LmoParams& p, int root, Bytes m) {
  p.validate();
  LMO_CHECK(root >= 0 && root < p.size());
  return root_serial(p, root, m) + remote_tail(p, root, m).max;
}

double linear_scatter_time(const LmoOriginalParams& p, int root, Bytes m) {
  LMO_CHECK(p.size() >= 2);
  LMO_CHECK(root >= 0 && root < p.size());
  const double serial =
      double(p.size() - 1) *
      (p.C[std::size_t(root)] + double(m) * p.t[std::size_t(root)]);
  double mx = 0.0;
  for (int i = 0; i < p.size(); ++i) {
    if (i == root) continue;
    mx = std::max(mx, double(m) * p.inv_beta(root, i) +
                          p.C[std::size_t(i)] +
                          double(m) * p.t[std::size_t(i)]);
  }
  return serial + mx;
}

GatherPrediction linear_gather_time(const LmoParams& p,
                                    const GatherEmpirical& emp, int root,
                                    Bytes m) {
  p.validate();
  LMO_CHECK(root >= 0 && root < p.size());
  const double serial = root_serial(p, root, m);
  const Tail tail = remote_tail(p, root, m);

  GatherPrediction out;
  if (emp.m2 > 0 && m >= emp.m2) {
    out.regime = GatherRegime::kLarge;
    out.base = serial + tail.sum;
    out.linear_probability = 0.0;
    return out;
  }
  out.base = serial + tail.max;
  if (emp.in_band(m)) {
    out.regime = GatherRegime::kMedium;
    out.expected_escalation = emp.expected_escalation(m);
    out.max_escalation = emp.max_escalation();
    out.linear_probability = emp.linear_probability(m);
  }
  return out;
}

namespace {
/// Bytes crossing the arc into virtual rank `child`.
using ArcBytes = double (*)(int child, int n, Bytes m);

double scatter_arc_bytes(int child, int n, Bytes m) {
  return double(trees::binomial_subtree_blocks(child, n)) * double(m);
}
double bcast_arc_bytes(int /*child*/, int /*n*/, Bytes m) {
  return double(m);
}

/// Completion time of the subtree rooted at virtual rank v, measured from
/// the instant v's processor holds its data. The parent's per-child CPU
/// terms accumulate (serialized); wire and child processing overlap.
double lmo_subtree(const LmoParams& p, const std::vector<int>& mapping,
                   int root, int n, Bytes m, int v, ArcBytes arc_bytes) {
  const int pv = trees::map_rank(mapping, v, root, n);
  double cpu_done = 0.0;
  double total = 0.0;
  for (const int child : trees::binomial_children(v, n)) {
    const int pc = trees::map_rank(mapping, child, root, n);
    const double bytes = arc_bytes(child, n, m);
    cpu_done += p.C[std::size_t(pv)] + bytes * p.t[std::size_t(pv)];
    const double arrival = cpu_done + p.L(pv, pc) +
                           bytes * p.inv_beta(pv, pc) +
                           p.C[std::size_t(pc)] + bytes * p.t[std::size_t(pc)];
    total = std::max(
        total, arrival + lmo_subtree(p, mapping, root, n, m, child, arc_bytes));
  }
  return std::max(total, cpu_done);
}

/// Gather mirror: children's subtrees complete, then their messages travel
/// up; the parent's receive processing is serialized, transmissions are
/// parallel. Children finish in reverse send order (smallest subtree
/// first), matching the algorithm in coll::binomial_gather. `combine` adds
/// one extra serialized processing per received block (reduce).
double lmo_subtree_gather(const LmoParams& p, const std::vector<int>& mapping,
                          int root, int n, Bytes m, int v, ArcBytes arc_bytes,
                          bool combine) {
  const int pv = trees::map_rank(mapping, v, root, n);
  auto children = trees::binomial_children(v, n);
  std::reverse(children.begin(), children.end());
  double done = 0.0;
  for (const int child : children) {
    const int pc = trees::map_rank(mapping, child, root, n);
    const double bytes = arc_bytes(child, n, m);
    // The child's message is ready after its own subtree completes plus its
    // send processing; it then needs the wire plus the parent's receive
    // processing, which queues behind the previous child's.
    const double ready =
        lmo_subtree_gather(p, mapping, root, n, m, child, arc_bytes, combine) +
        p.C[std::size_t(pc)] + bytes * p.t[std::size_t(pc)] + p.L(pv, pc) +
        bytes * p.inv_beta(pv, pc);
    const double processing =
        (combine ? 2.0 : 1.0) *
        (p.C[std::size_t(pv)] + bytes * p.t[std::size_t(pv)]);
    done = std::max(done, ready) + processing;
  }
  return done;
}
}  // namespace

double binomial_scatter_time(const LmoParams& p, int root, Bytes m,
                             const std::vector<int>& mapping) {
  p.validate();
  LMO_CHECK(root >= 0 && root < p.size());
  return lmo_subtree(p, mapping, root, p.size(), m, 0, scatter_arc_bytes);
}

double binomial_gather_time(const LmoParams& p, int root, Bytes m,
                            const std::vector<int>& mapping) {
  p.validate();
  LMO_CHECK(root >= 0 && root < p.size());
  return lmo_subtree_gather(p, mapping, root, p.size(), m, 0,
                            scatter_arc_bytes, /*combine=*/false);
}

double linear_bcast_time(const LmoParams& p, int root, Bytes m) {
  // Same structure as eq. (4): all messages carry m bytes.
  return linear_scatter_time(p, root, m);
}

double binomial_bcast_time(const LmoParams& p, int root, Bytes m,
                           const std::vector<int>& mapping) {
  p.validate();
  LMO_CHECK(root >= 0 && root < p.size());
  return lmo_subtree(p, mapping, root, p.size(), m, 0, bcast_arc_bytes);
}

double linear_reduce_time(const LmoParams& p, int root, Bytes m) {
  p.validate();
  LMO_CHECK(root >= 0 && root < p.size());
  // One receive processing plus one combine per block, both at the root.
  return 2.0 * root_serial(p, root, m) + remote_tail(p, root, m).max;
}

double binomial_reduce_time(const LmoParams& p, int root, Bytes m,
                            const std::vector<int>& mapping) {
  p.validate();
  LMO_CHECK(root >= 0 && root < p.size());
  return lmo_subtree_gather(p, mapping, root, p.size(), m, 0,
                            bcast_arc_bytes, /*combine=*/true);
}

namespace {
/// The fabric charges at least one minimal Ethernet frame per message on
/// the wire; segment grids that go tiny would otherwise look free.
constexpr double kMinFrameBytes = 64.0;

/// Replays Fabric::transfer's resource chain for one message priced from
/// the fitted parameters: the sender's egress port, every *contended*
/// shared segment on the path (memory bus, oversubscribed uplink — only
/// when a topology is supplied), then the receiver's ingress port. Flat
/// clusters carry no contended segments, so the shared-cursor loop is a
/// no-op there and the evaluators price exactly what they did before.
class WireState {
 public:
  WireState(int n, const sim::Topology* topo)
      : egress_(std::size_t(n), 0.0),
        ingress_(std::size_t(n), 0.0),
        topo_(topo && !topo->empty() && topo->any_contended() ? topo
                                                              : nullptr) {}

  /// Schedule one src -> dst message whose send CPU finishes at `ready`;
  /// returns the arrival time at dst (ingress grant + wire occupancy).
  double send(const LmoParams& p, int src, int dst, double bytes,
              double ready) {
    const double wire = std::max(bytes, kMinFrameBytes) * p.inv_beta(src, dst);
    const double eg = std::max(ready, egress_[std::size_t(src)]);
    egress_[std::size_t(src)] = eg + wire;
    double avail = eg;
    if (topo_)
      topo_->for_each_contended_segment(src, dst, [&](int l, int g) {
        double& cursor = shared_[{l, g}];
        avail = std::max(avail, cursor);
        cursor = avail + wire;
      });
    const double in =
        std::max(avail + p.L(src, dst), ingress_[std::size_t(dst)]);
    ingress_[std::size_t(dst)] = in + wire;
    return in + wire;
  }

 private:
  std::vector<double> egress_, ingress_;
  std::map<std::pair<int, int>, double> shared_;  // (level, group) cursor
  const sim::Topology* topo_;
};

/// Segment `total` into a pipelined series of chunks of at most `segment`
/// bytes (one full-size chunk when segment is 0 or >= total).
std::vector<double> chunk_sizes(Bytes total, Bytes segment) {
  if (total <= 0 || segment <= 0 || segment >= total)
    return {double(total > 0 ? total : 0)};
  std::vector<double> chunks;
  Bytes remaining = total;
  while (remaining > 0) {
    const Bytes piece = std::min(remaining, segment);
    chunks.push_back(double(piece));
    remaining -= piece;
  }
  return chunks;
}

/// One step of a rank's replayed coroutine: a blocking receive or an
/// eager send, with the message's arrival slot and byte count.
struct SchedOp {
  bool recv;
  int peer;          // physical rank on the other side
  std::size_t edge;  // arrival slot, unique per message
  double bytes;
  bool extra;        // reduce: a second processing term per received block
};

/// Event-driven replay of a schedule: each rank executes its op list on a
/// private clock; blocking receives consume already-known arrivals
/// immediately (they reserve nothing), while sends are granted their wire
/// resources in global post-time order with ties broken by rank — exactly
/// the order the fabric's Timelines see them, which is what keeps chunked
/// pipelines from looking serialized on shared segments.
double run_schedule(const LmoParams& p,
                    const std::vector<std::vector<SchedOp>>& ops,
                    std::size_t edges, const sim::Topology* topo) {
  const int n = int(ops.size());
  WireState wires(n, topo);
  std::vector<double> arrival(edges, 0.0);
  std::vector<char> known(edges, 0);
  std::vector<double> clock(std::size_t(n), 0.0);
  std::vector<std::size_t> next(std::size_t(n), 0);
  std::vector<char> queued(std::size_t(n), 0);
  using Item = std::pair<double, int>;  // (post time, rank)
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> sends;
  // Run rank `r` forward: consume satisfied receives, park on the first
  // unsatisfied one, enqueue when the next op is a send.
  auto advance = [&](int r) {
    const auto& list = ops[std::size_t(r)];
    double& t = clock[std::size_t(r)];
    std::size_t& i = next[std::size_t(r)];
    while (i < list.size()) {
      const SchedOp& op = list[i];
      if (!op.recv) {
        if (!queued[std::size_t(r)]) {
          sends.push({t, r});
          queued[std::size_t(r)] = 1;
        }
        return;
      }
      if (!known[op.edge]) return;  // parked until the matching send
      const double proc = p.C[std::size_t(r)] + op.bytes * p.t[std::size_t(r)];
      t = std::max(t, arrival[op.edge]) + proc;
      if (op.extra) t += proc;
      ++i;
    }
  };
  for (int r = 0; r < n; ++r) advance(r);
  while (!sends.empty()) {
    const int r = sends.top().second;
    sends.pop();
    queued[std::size_t(r)] = 0;
    const SchedOp& op = ops[std::size_t(r)][next[std::size_t(r)]];
    double& t = clock[std::size_t(r)];
    t += p.C[std::size_t(r)] + op.bytes * p.t[std::size_t(r)];  // send CPU
    arrival[op.edge] = wires.send(p, r, op.peer, op.bytes, t);
    known[op.edge] = 1;
    ++next[std::size_t(r)];
    advance(r);
    advance(op.peer);
  }
  double completion = 0.0;
  for (const double t : clock) completion = std::max(completion, t);
  return completion;
}

/// Root-to-leaves op lists (bcast/scatter): per chunk, a blocking receive
/// from the parent then one eager send per child in tree_children order.
/// `scatter` scales arc bytes by the receiving subtree's block count.
/// Arrival slot for the message into virtual rank v at chunk s: v*S + s.
std::vector<std::vector<SchedOp>> tree_down_ops(
    trees::TreeKind kind, int root, const std::vector<int>& mapping, int n,
    const std::vector<double>& chunks, bool scatter) {
  std::vector<std::vector<SchedOp>> ops{std::size_t(n)};
  const std::size_t S = chunks.size();
  for (int v = 0; v < n; ++v) {
    const int pv = trees::map_rank(mapping, v, root, n);
    const auto kids = trees::tree_children(kind, v, n);
    auto& list = ops[std::size_t(pv)];
    for (std::size_t s = 0; s < S; ++s) {
      if (v != 0) {
        const double b =
            (scatter ? double(trees::tree_subtree_size(kind, v, n)) : 1.0) *
            chunks[s];
        const int parent = trees::tree_parent(kind, v);
        list.push_back({true, trees::map_rank(mapping, parent, root, n),
                        std::size_t(v) * S + s, b, false});
      }
      for (const int child : kids) {
        const double b =
            (scatter ? double(trees::tree_subtree_size(kind, child, n))
                     : 1.0) *
            chunks[s];
        list.push_back({false, trees::map_rank(mapping, child, root, n),
                        std::size_t(child) * S + s, b, false});
      }
    }
  }
  return ops;
}

/// Leaves-to-root mirror (gather/reduce): per chunk, a blocking receive
/// per child in tree_recv_order (`combine` adds one serialized combine per
/// received block) then one eager send up. Arrival slot for the message
/// out of virtual rank v at chunk s: v*S + s.
std::vector<std::vector<SchedOp>> tree_up_ops(
    trees::TreeKind kind, int root, const std::vector<int>& mapping, int n,
    const std::vector<double>& chunks, bool gather, bool combine) {
  std::vector<std::vector<SchedOp>> ops{std::size_t(n)};
  const std::size_t S = chunks.size();
  for (int v = 0; v < n; ++v) {
    const int pv = trees::map_rank(mapping, v, root, n);
    const auto order = trees::tree_recv_order(kind, v, n);
    auto& list = ops[std::size_t(pv)];
    for (std::size_t s = 0; s < S; ++s) {
      for (const int child : order) {
        const double b =
            (gather ? double(trees::tree_subtree_size(kind, child, n)) : 1.0) *
            chunks[s];
        list.push_back({true, trees::map_rank(mapping, child, root, n),
                        std::size_t(child) * S + s, b, combine});
      }
      if (v != 0) {
        const double b =
            (gather ? double(trees::tree_subtree_size(kind, v, n)) : 1.0) *
            chunks[s];
        const int parent = trees::tree_parent(kind, v);
        list.push_back({false, trees::map_rank(mapping, parent, root, n),
                        std::size_t(v) * S + s, b, false});
      }
    }
  }
  return ops;
}

double eval_tree_down(const LmoParams& p, trees::TreeKind kind, int root,
                      const std::vector<int>& mapping, Bytes unit,
                      Bytes segment, bool scatter, const sim::Topology* topo) {
  const int n = p.size();
  const auto chunks = chunk_sizes(unit, segment);
  return run_schedule(p, tree_down_ops(kind, root, mapping, n, chunks, scatter),
                      std::size_t(n) * chunks.size(), topo);
}

double eval_tree_up(const LmoParams& p, trees::TreeKind kind, int root,
                    const std::vector<int>& mapping, Bytes unit, Bytes segment,
                    bool gather, bool combine, const sim::Topology* topo) {
  const int n = p.size();
  const auto chunks = chunk_sizes(unit, segment);
  return run_schedule(
      p, tree_up_ops(kind, root, mapping, n, chunks, gather, combine),
      std::size_t(n) * chunks.size(), topo);
}

/// Append coll::ring_allgather's op sequence: per step, every rank posts
/// an eager send right then blocks on the receive from the left (the
/// trailing wait costs nothing extra — the send clock already carries the
/// CPU charge). Arrival slot for rank i's step-s send: base + i*(n-1) + s.
void append_ring_ops(std::vector<std::vector<SchedOp>>& ops, int n, double b,
                     std::size_t base) {
  for (int i = 0; i < n; ++i) {
    const int right = (i + 1) % n;
    const int left = (i - 1 + n) % n;
    for (int s = 0; s < n - 1; ++s) {
      ops[std::size_t(i)].push_back(
          {false, right, base + std::size_t(i) * std::size_t(n - 1) +
                             std::size_t(s),
           b, false});
      ops[std::size_t(i)].push_back(
          {true, left, base + std::size_t(left) * std::size_t(n - 1) +
                           std::size_t(s),
           b, false});
    }
  }
}
}  // namespace

double tree_bcast_time(const LmoParams& p, trees::TreeKind kind, int root,
                       Bytes m, const std::vector<int>& mapping, Bytes segment,
                       const sim::Topology* topology) {
  p.validate();
  LMO_CHECK(root >= 0 && root < p.size());
  LMO_CHECK(m >= 0);
  return eval_tree_down(p, kind, root, mapping, m, segment, /*scatter=*/false,
                        topology);
}

double tree_scatter_time(const LmoParams& p, trees::TreeKind kind, int root,
                         Bytes m, const std::vector<int>& mapping,
                         Bytes segment, const sim::Topology* topology) {
  p.validate();
  LMO_CHECK(root >= 0 && root < p.size());
  LMO_CHECK(m >= 0);
  return eval_tree_down(p, kind, root, mapping, m, segment, /*scatter=*/true,
                        topology);
}

double tree_gather_time(const LmoParams& p, trees::TreeKind kind, int root,
                        Bytes m, const std::vector<int>& mapping, Bytes segment,
                        const sim::Topology* topology) {
  p.validate();
  LMO_CHECK(root >= 0 && root < p.size());
  LMO_CHECK(m >= 0);
  return eval_tree_up(p, kind, root, mapping, m, segment, /*gather=*/true,
                      /*combine=*/false, topology);
}

double tree_reduce_time(const LmoParams& p, trees::TreeKind kind, int root,
                        Bytes m, const std::vector<int>& mapping, Bytes segment,
                        const sim::Topology* topology) {
  p.validate();
  LMO_CHECK(root >= 0 && root < p.size());
  LMO_CHECK(m >= 0);
  return eval_tree_up(p, kind, root, mapping, m, segment, /*gather=*/false,
                      /*combine=*/true, topology);
}

double scatter_allgather_bcast_time(const LmoParams& p, int root, Bytes m,
                                    const sim::Topology* topology) {
  p.validate();
  LMO_CHECK(root >= 0 && root < p.size());
  LMO_CHECK(m >= 0);
  const int n = p.size();
  if (n == 1) return 0.0;
  const Bytes block = (m + n - 1) / n;
  // One schedule covering both phases: each rank enters the ring as soon
  // as its own scatter part lands (no global barrier between phases),
  // which is exactly how coll::scatter_allgather_bcast executes.
  const std::vector<double> chunks = {double(block)};
  auto ops = tree_down_ops(trees::TreeKind::kBinomial, root, {}, n, chunks,
                           /*scatter=*/true);
  const std::size_t scatter_edges = std::size_t(n);
  append_ring_ops(ops, n, double(block), scatter_edges);
  return run_schedule(p, ops, scatter_edges + std::size_t(n) * std::size_t(n - 1),
                      topology);
}

double ring_allgather_time(const LmoParams& p, Bytes m) {
  p.validate();
  const int n = p.size();
  // Each of the n-1 steps completes when the slowest neighbour exchange
  // does: send processing + wire + receive processing over link (i, i+1).
  double step = 0.0;
  for (int i = 0; i < n; ++i) {
    const int j = (i + 1) % n;
    step = std::max(step, p.pt2pt(i, j, m));
  }
  return double(n - 1) * step;
}

double pairwise_alltoall_time(const LmoParams& p, Bytes m) {
  p.validate();
  const int n = p.size();
  // Step s pairs (i, i+s): the step ends when its slowest exchange does.
  double total = 0.0;
  for (int step = 1; step < n; ++step) {
    double slowest = 0.0;
    for (int i = 0; i < n; ++i)
      slowest = std::max(slowest, p.pt2pt(i, (i + step) % n, m));
    total += slowest;
  }
  return total;
}

double linear_scatter_time_with_leaps(const LmoParams& p,
                                      const ScatterEmpirical& emp, int root,
                                      Bytes m) {
  // The root's n-2 pipelined sends each pay the per-message leap; the
  // detected empirical magnitude is already the collective's total.
  return linear_scatter_time(p, root, m) + emp.extra(m);
}

MappingPlan optimize_binomial_scatter_mapping(const LmoParams& p, int root,
                                              Bytes m) {
  p.validate();
  MappingPlan plan;
  plan.predicted_default = binomial_scatter_time(p, root, m);
  const auto result = trees::optimize_mapping(
      p.size(), root, [&](const std::vector<int>& mapping) {
        return binomial_scatter_time(p, root, m, mapping);
      });
  plan.mapping = result.mapping;
  plan.predicted_optimized = result.cost;
  return plan;
}

}  // namespace lmo::core
