#include "core/predictions.hpp"

#include <algorithm>

#include "trees/binomial.hpp"
#include "trees/mapping.hpp"
#include "util/error.hpp"

namespace lmo::core {

namespace {
/// (n-1)(C_r + M t_r): the root's serialized message processing.
double root_serial(const LmoParams& p, int root, Bytes m) {
  return double(p.size() - 1) *
         (p.C[std::size_t(root)] + double(m) * p.t[std::size_t(root)]);
}

/// max_i / sum_i of (L_ri + M/beta_ri + C_i + M t_i).
struct Tail {
  double max = 0.0;
  double sum = 0.0;
};
Tail remote_tail(const LmoParams& p, int root, Bytes m) {
  Tail tail;
  for (int i = 0; i < p.size(); ++i) {
    if (i == root) continue;
    const double term =
        p.L(root, i) + double(m) * p.inv_beta(root, i) +
        p.C[std::size_t(i)] + double(m) * p.t[std::size_t(i)];
    tail.max = std::max(tail.max, term);
    tail.sum += term;
  }
  return tail;
}
}  // namespace

double linear_scatter_time(const LmoParams& p, int root, Bytes m) {
  p.validate();
  LMO_CHECK(root >= 0 && root < p.size());
  return root_serial(p, root, m) + remote_tail(p, root, m).max;
}

double linear_scatter_time(const LmoOriginalParams& p, int root, Bytes m) {
  LMO_CHECK(p.size() >= 2);
  LMO_CHECK(root >= 0 && root < p.size());
  const double serial =
      double(p.size() - 1) *
      (p.C[std::size_t(root)] + double(m) * p.t[std::size_t(root)]);
  double mx = 0.0;
  for (int i = 0; i < p.size(); ++i) {
    if (i == root) continue;
    mx = std::max(mx, double(m) * p.inv_beta(root, i) +
                          p.C[std::size_t(i)] +
                          double(m) * p.t[std::size_t(i)]);
  }
  return serial + mx;
}

GatherPrediction linear_gather_time(const LmoParams& p,
                                    const GatherEmpirical& emp, int root,
                                    Bytes m) {
  p.validate();
  LMO_CHECK(root >= 0 && root < p.size());
  const double serial = root_serial(p, root, m);
  const Tail tail = remote_tail(p, root, m);

  GatherPrediction out;
  if (emp.m2 > 0 && m >= emp.m2) {
    out.regime = GatherRegime::kLarge;
    out.base = serial + tail.sum;
    out.linear_probability = 0.0;
    return out;
  }
  out.base = serial + tail.max;
  if (emp.in_band(m)) {
    out.regime = GatherRegime::kMedium;
    out.expected_escalation = emp.expected_escalation(m);
    out.max_escalation = emp.max_escalation();
    out.linear_probability = emp.linear_probability(m);
  }
  return out;
}

namespace {
/// Bytes crossing the arc into virtual rank `child`.
using ArcBytes = double (*)(int child, int n, Bytes m);

double scatter_arc_bytes(int child, int n, Bytes m) {
  return double(trees::binomial_subtree_blocks(child, n)) * double(m);
}
double bcast_arc_bytes(int /*child*/, int /*n*/, Bytes m) {
  return double(m);
}

/// Completion time of the subtree rooted at virtual rank v, measured from
/// the instant v's processor holds its data. The parent's per-child CPU
/// terms accumulate (serialized); wire and child processing overlap.
double lmo_subtree(const LmoParams& p, const std::vector<int>& mapping,
                   int root, int n, Bytes m, int v, ArcBytes arc_bytes) {
  const int pv = trees::map_rank(mapping, v, root, n);
  double cpu_done = 0.0;
  double total = 0.0;
  for (const int child : trees::binomial_children(v, n)) {
    const int pc = trees::map_rank(mapping, child, root, n);
    const double bytes = arc_bytes(child, n, m);
    cpu_done += p.C[std::size_t(pv)] + bytes * p.t[std::size_t(pv)];
    const double arrival = cpu_done + p.L(pv, pc) +
                           bytes * p.inv_beta(pv, pc) +
                           p.C[std::size_t(pc)] + bytes * p.t[std::size_t(pc)];
    total = std::max(
        total, arrival + lmo_subtree(p, mapping, root, n, m, child, arc_bytes));
  }
  return std::max(total, cpu_done);
}

/// Gather mirror: children's subtrees complete, then their messages travel
/// up; the parent's receive processing is serialized, transmissions are
/// parallel. Children finish in reverse send order (smallest subtree
/// first), matching the algorithm in coll::binomial_gather. `combine` adds
/// one extra serialized processing per received block (reduce).
double lmo_subtree_gather(const LmoParams& p, const std::vector<int>& mapping,
                          int root, int n, Bytes m, int v, ArcBytes arc_bytes,
                          bool combine) {
  const int pv = trees::map_rank(mapping, v, root, n);
  auto children = trees::binomial_children(v, n);
  std::reverse(children.begin(), children.end());
  double done = 0.0;
  for (const int child : children) {
    const int pc = trees::map_rank(mapping, child, root, n);
    const double bytes = arc_bytes(child, n, m);
    // The child's message is ready after its own subtree completes plus its
    // send processing; it then needs the wire plus the parent's receive
    // processing, which queues behind the previous child's.
    const double ready =
        lmo_subtree_gather(p, mapping, root, n, m, child, arc_bytes, combine) +
        p.C[std::size_t(pc)] + bytes * p.t[std::size_t(pc)] + p.L(pv, pc) +
        bytes * p.inv_beta(pv, pc);
    const double processing =
        (combine ? 2.0 : 1.0) *
        (p.C[std::size_t(pv)] + bytes * p.t[std::size_t(pv)]);
    done = std::max(done, ready) + processing;
  }
  return done;
}
}  // namespace

double binomial_scatter_time(const LmoParams& p, int root, Bytes m,
                             const std::vector<int>& mapping) {
  p.validate();
  LMO_CHECK(root >= 0 && root < p.size());
  return lmo_subtree(p, mapping, root, p.size(), m, 0, scatter_arc_bytes);
}

double binomial_gather_time(const LmoParams& p, int root, Bytes m,
                            const std::vector<int>& mapping) {
  p.validate();
  LMO_CHECK(root >= 0 && root < p.size());
  return lmo_subtree_gather(p, mapping, root, p.size(), m, 0,
                            scatter_arc_bytes, /*combine=*/false);
}

double linear_bcast_time(const LmoParams& p, int root, Bytes m) {
  // Same structure as eq. (4): all messages carry m bytes.
  return linear_scatter_time(p, root, m);
}

double binomial_bcast_time(const LmoParams& p, int root, Bytes m,
                           const std::vector<int>& mapping) {
  p.validate();
  LMO_CHECK(root >= 0 && root < p.size());
  return lmo_subtree(p, mapping, root, p.size(), m, 0, bcast_arc_bytes);
}

double linear_reduce_time(const LmoParams& p, int root, Bytes m) {
  p.validate();
  LMO_CHECK(root >= 0 && root < p.size());
  // One receive processing plus one combine per block, both at the root.
  return 2.0 * root_serial(p, root, m) + remote_tail(p, root, m).max;
}

double binomial_reduce_time(const LmoParams& p, int root, Bytes m,
                            const std::vector<int>& mapping) {
  p.validate();
  LMO_CHECK(root >= 0 && root < p.size());
  return lmo_subtree_gather(p, mapping, root, p.size(), m, 0,
                            bcast_arc_bytes, /*combine=*/true);
}

double ring_allgather_time(const LmoParams& p, Bytes m) {
  p.validate();
  const int n = p.size();
  // Each of the n-1 steps completes when the slowest neighbour exchange
  // does: send processing + wire + receive processing over link (i, i+1).
  double step = 0.0;
  for (int i = 0; i < n; ++i) {
    const int j = (i + 1) % n;
    step = std::max(step, p.pt2pt(i, j, m));
  }
  return double(n - 1) * step;
}

double pairwise_alltoall_time(const LmoParams& p, Bytes m) {
  p.validate();
  const int n = p.size();
  // Step s pairs (i, i+s): the step ends when its slowest exchange does.
  double total = 0.0;
  for (int step = 1; step < n; ++step) {
    double slowest = 0.0;
    for (int i = 0; i < n; ++i)
      slowest = std::max(slowest, p.pt2pt(i, (i + step) % n, m));
    total += slowest;
  }
  return total;
}

double linear_scatter_time_with_leaps(const LmoParams& p,
                                      const ScatterEmpirical& emp, int root,
                                      Bytes m) {
  // The root's n-2 pipelined sends each pay the per-message leap; the
  // detected empirical magnitude is already the collective's total.
  return linear_scatter_time(p, root, m) + emp.extra(m);
}

MappingPlan optimize_binomial_scatter_mapping(const LmoParams& p, int root,
                                              Bytes m) {
  p.validate();
  MappingPlan plan;
  plan.predicted_default = binomial_scatter_time(p, root, m);
  const auto result = trees::optimize_mapping(
      p.size(), root, [&](const std::vector<int>& mapping) {
        return binomial_scatter_time(p, root, m, mapping);
      });
  plan.mapping = result.mapping;
  plan.predicted_optimized = result.cost;
  return plan;
}

}  // namespace lmo::core
