// Model-driven collective tuning — the end-to-end application of the LMO
// model (the paper's software tool [13] and the HeteroMPI optimization
// [10]): given the estimated point-to-point parameters and the empirical
// gather band, decide per operation and message size which algorithm of
// the zoo to run, with which segment size and processor-to-tree mapping.
//
// decide() is pure (model-only); the caller executes the decision through
// coll::run_decision on a vmpi::SimSession — every candidate the tuner
// prices is executable with exactly the parameters it priced (algorithm,
// segment, mapping), which is what lets bench_ext_tuner replay decisions
// against simulated ground truth and report regret.
#pragma once

#include <string>
#include <vector>

#include "core/empirical.hpp"
#include "core/lmo_model.hpp"
#include "core/optimize.hpp"
#include "core/predictions.hpp"
#include "obs/json.hpp"
#include "util/bytes.hpp"

namespace lmo::core {

enum class CollectiveKind { kScatter, kGather, kBcast, kReduce };

[[nodiscard]] const char* collective_name(CollectiveKind kind);
/// Inverse of collective_name; throws lmo::Error naming the valid ops.
[[nodiscard]] CollectiveKind parse_collective(const std::string& name);

/// The collective algorithm zoo. kLinear is the flat tree (the paper's
/// native algorithms); the tree shapes follow Barchet-Estefanel & Mounié's
/// intra-cluster zoo; kScatterAllgather is the composite broadcast
/// (binomial scatter of m/n blocks + ring allgather).
enum class AlgorithmId {
  kLinear,
  kBinomial,
  kChain,
  kBinaryTree,
  kScatterAllgather,  ///< bcast only
};

[[nodiscard]] const char* algorithm_name(AlgorithmId id);
/// Inverse of algorithm_name; throws lmo::Error naming the valid names.
[[nodiscard]] AlgorithmId parse_algorithm(const std::string& name);

/// All AlgorithmId values, for exhaustive sweeps and tests.
[[nodiscard]] const std::vector<AlgorithmId>& all_algorithms();

struct TunedDecision {
  CollectiveKind kind = CollectiveKind::kScatter;
  AlgorithmId algorithm = AlgorithmId::kLinear;
  int root = 0;
  Bytes message = 0;
  /// Non-empty: use this processor-to-virtual-rank mapping (tree shapes).
  std::vector<int> mapping;
  /// > 0: chunk the message/block into segments of at most this size —
  /// a pipelined series of the base algorithm (generalizes split_gather:
  /// kLinear gather with a segment IS the Fig. 7 split plan).
  Bytes segment = 0;
  double predicted_seconds = 0.0;

  [[nodiscard]] std::string describe() const;
  /// Wire form for the serving protocol and run reports: {"op",
  /// "algorithm", "root", "message", "segment", "mapping", "describe",
  /// "predicted_seconds"}.
  [[nodiscard]] obs::Json to_json() const;
};

struct TunerOptions {
  /// Try the mapping hill-climb for binomial algorithms (slower to plan).
  bool optimize_mappings = true;
  /// Consider splitting medium gathers (needs empirical parameters).
  bool split_gathers = true;
  /// Consider the chain/binary/composite zoo and segmented pipelining on
  /// top of the paper's linear/binomial pair.
  bool tree_zoo = true;
  /// Segment sizes the (algorithm, segment) search tries for pipelined
  /// tree collectives; only candidates < the message size apply. The
  /// validation harness replays exactly this grid.
  std::vector<Bytes> segment_candidates = {2 * 1024, 8 * 1024, 32 * 1024};
  /// Optional hierarchical topology (not owned; must outlive the Tuner).
  /// When it constrains concurrency, predictions price contended shared
  /// segments (memory bus, oversubscribed uplink) and every algorithm
  /// routes through the schedule evaluators — the closed forms are blind
  /// to cross-transfer contention.
  const sim::Topology* topology = nullptr;
};

class Tuner {
 public:
  Tuner(LmoParams params, GatherEmpirical gather_empirical,
        TunerOptions options = {});

  [[nodiscard]] const LmoParams& params() const { return params_; }
  [[nodiscard]] const TunerOptions& options() const { return options_; }

  /// Every (algorithm, segment, mapping) candidate the tuner prices for
  /// one collective invocation, each with its predicted cost — the search
  /// space decide() minimizes over and the validation harness replays.
  [[nodiscard]] std::vector<TunedDecision> candidates(CollectiveKind kind,
                                                      int root,
                                                      Bytes m) const;

  /// Choose the best plan for one collective invocation.
  [[nodiscard]] TunedDecision decide(CollectiveKind kind, int root,
                                     Bytes m) const;

  /// All message sizes in (lo, hi] where the decided algorithm flips,
  /// in increasing order: a geometric grid scan locates every switch
  /// interval (algorithm selection is not monotone — a switch-and-switch-
  /// back between lo and hi is real, not "no crossover"), then bisection
  /// pins each boundary to the byte.
  [[nodiscard]] std::vector<Bytes> crossovers(CollectiveKind kind, int root,
                                              Bytes lo, Bytes hi) const;

  /// The first crossover in (lo, hi], or 0 if the decision never flips.
  [[nodiscard]] Bytes crossover(CollectiveKind kind, int root, Bytes lo,
                                Bytes hi) const;

  /// Price an externally supplied decision (e.g. one parsed off the wire)
  /// with this tuner's model — the same evaluator candidates() uses, so a
  /// replayed decision re-prices to the bit.
  [[nodiscard]] double price(const TunedDecision& d) const;

 private:
  [[nodiscard]] double predict(CollectiveKind kind, AlgorithmId id, int root,
                               Bytes m, const std::vector<int>& mapping,
                               Bytes segment) const;

  LmoParams params_;
  GatherEmpirical gather_empirical_;
  TunerOptions options_;
};

}  // namespace lmo::core
