// Model-driven collective tuning — the end-to-end application of the LMO
// model (the paper's software tool [13] and the HeteroMPI optimization
// [10]): given the estimated point-to-point parameters and the empirical
// gather band, decide per operation and message size which algorithm to
// run, with which processor-to-tree mapping, and whether to split.
//
// decide() is pure (model-only); the caller executes the decision through
// coll:: on a vmpi::World — see examples/tuned_collectives.
#pragma once

#include <string>
#include <vector>

#include "core/empirical.hpp"
#include "core/lmo_model.hpp"
#include "core/optimize.hpp"
#include "core/predictions.hpp"
#include "util/bytes.hpp"

namespace lmo::core {

enum class CollectiveKind { kScatter, kGather, kBcast, kReduce };

struct TunedDecision {
  CollectiveKind kind = CollectiveKind::kScatter;
  ScatterAlgorithm algorithm = ScatterAlgorithm::kLinear;
  /// Non-empty: use this processor-to-virtual-rank mapping (binomial only).
  std::vector<int> mapping;
  /// > 0: split into a series of this chunk size (gather only).
  Bytes split_chunk = 0;
  double predicted_seconds = 0.0;

  [[nodiscard]] std::string describe() const;
};

struct TunerOptions {
  /// Try the mapping hill-climb for binomial algorithms (slower to plan).
  bool optimize_mappings = true;
  /// Consider splitting medium gathers (needs empirical parameters).
  bool split_gathers = true;
};

class Tuner {
 public:
  Tuner(LmoParams params, GatherEmpirical gather_empirical,
        TunerOptions options = {});

  [[nodiscard]] const LmoParams& params() const { return params_; }

  /// Choose the best plan for one collective invocation.
  [[nodiscard]] TunedDecision decide(CollectiveKind kind, int root,
                                     Bytes m) const;

  /// The message size (within [lo, hi]) where the decision for `kind`
  /// flips between algorithms, found by bisection; 0 if it never flips.
  [[nodiscard]] Bytes crossover(CollectiveKind kind, int root, Bytes lo,
                                Bytes hi) const;

 private:
  [[nodiscard]] double predict_linear(CollectiveKind kind, int root,
                                      Bytes m) const;
  [[nodiscard]] double predict_binomial(CollectiveKind kind, int root, Bytes m,
                                        const std::vector<int>& mapping) const;

  LmoParams params_;
  GatherEmpirical gather_empirical_;
  TunerOptions options_;
};

}  // namespace lmo::core
