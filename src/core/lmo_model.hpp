// The LMO heterogeneous communication performance model (paper Section III).
//
// Extended (6-parameter) point-to-point model — this paper's contribution:
//
//   T_ij(M) = C_i + L_ij + C_j + M (t_i + 1/beta_ij + t_j)
//
//   C_i      fixed processing delay of processor i        [s]
//   t_i      per-byte processing delay of processor i     [s/B]
//   L_ij     fixed network latency of link (i,j)          [s]
//   beta_ij  transmission rate of link (i,j)              [B/s]
//
// The four contributions — constant/variable x processor/network — are
// fully separated, which is what lets collective formulas combine sums
// (serialized resources) and maxima (parallel resources) correctly.
//
// The original (5-parameter) LMO model [ICPADS'06, IPDPS'07] lacks L_ij;
// its fixed "processing delays" silently absorb the network latency. It is
// kept for the separation ablation.
#pragma once

#include <vector>

#include "models/hockney.hpp"
#include "models/pair_table.hpp"
#include "simnet/topology.hpp"
#include "util/bytes.hpp"

namespace lmo::core {

/// Fitted LMO link parameters of one resource-tree level: the mean L_ij
/// and 1/beta_ij over all fitted pairs whose lowest common ancestor sits
/// at that level (intra-node pairs at level 1, same-switch pairs at level
/// 2, ...). A hierarchy collapses the O(n^2) pair tables onto O(depth)
/// link classes.
struct LevelLink {
  double L = 0.0;         ///< mean link latency of the level's pairs [s]
  double inv_beta = 0.0;  ///< mean inverse transmission rate [s/B]
  int pairs = 0;          ///< fitted pairs aggregated into this level
};

struct LmoParams {
  std::vector<double> C;        ///< fixed processing delays [s]
  std::vector<double> t;        ///< per-byte processing delays [s/B]
  models::PairTable L;          ///< link latencies [s]
  models::PairTable inv_beta;   ///< inverse transmission rates [s/B]

  /// Per-level aggregation of L/inv_beta (index = level - 1), filled when
  /// the fit knew the platform's resource tree; empty on a flat fit.
  std::vector<LevelLink> per_level;

  [[nodiscard]] int size() const { return int(C.size()); }

  /// T_ij(M) = C_i + L_ij + C_j + M (t_i + 1/beta_ij + t_j).
  [[nodiscard]] double pt2pt(int i, int j, Bytes m) const;

  /// The heterogeneous Hockney view of these parameters:
  /// alpha_ij = C_i + L_ij + C_j, beta^H_ij = t_i + 1/beta_ij + t_j.
  [[nodiscard]] models::HeteroHockney as_hockney() const;

  void validate() const;
};

/// Original 5-parameter model: T_ij(M) = C_i + C_j + M (t_i + 1/b + t_j).
struct LmoOriginalParams {
  std::vector<double> C;
  std::vector<double> t;
  models::PairTable inv_beta;

  [[nodiscard]] int size() const { return int(C.size()); }
  [[nodiscard]] double pt2pt(int i, int j, Bytes m) const;
};

/// Fold the extended model's latencies into the processor constants — what
/// the original model would have estimated on the same cluster (each node
/// absorbs its average half-latency). Used by the separation ablation.
[[nodiscard]] LmoOriginalParams fold_latencies(const LmoParams& p);

/// Re-price every pair from the per-level parameters: L_ij and 1/beta_ij
/// become the LevelLink values of the pair's LCA level in `topo`. All
/// existing prediction formulas then price transfers by the path they
/// cross while the O(n^2) tables stay their interface. Requires
/// p.per_level to cover topo.depth() levels.
[[nodiscard]] LmoParams priced_by_path(const LmoParams& p,
                                       const sim::Topology& topo);

}  // namespace lmo::core
