// The LMO heterogeneous communication performance model (paper Section III).
//
// Extended (6-parameter) point-to-point model — this paper's contribution:
//
//   T_ij(M) = C_i + L_ij + C_j + M (t_i + 1/beta_ij + t_j)
//
//   C_i      fixed processing delay of processor i        [s]
//   t_i      per-byte processing delay of processor i     [s/B]
//   L_ij     fixed network latency of link (i,j)          [s]
//   beta_ij  transmission rate of link (i,j)              [B/s]
//
// The four contributions — constant/variable x processor/network — are
// fully separated, which is what lets collective formulas combine sums
// (serialized resources) and maxima (parallel resources) correctly.
//
// The original (5-parameter) LMO model [ICPADS'06, IPDPS'07] lacks L_ij;
// its fixed "processing delays" silently absorb the network latency. It is
// kept for the separation ablation.
#pragma once

#include <vector>

#include "models/hockney.hpp"
#include "models/pair_table.hpp"
#include "util/bytes.hpp"

namespace lmo::core {

struct LmoParams {
  std::vector<double> C;        ///< fixed processing delays [s]
  std::vector<double> t;        ///< per-byte processing delays [s/B]
  models::PairTable L;          ///< link latencies [s]
  models::PairTable inv_beta;   ///< inverse transmission rates [s/B]

  [[nodiscard]] int size() const { return int(C.size()); }

  /// T_ij(M) = C_i + L_ij + C_j + M (t_i + 1/beta_ij + t_j).
  [[nodiscard]] double pt2pt(int i, int j, Bytes m) const;

  /// The heterogeneous Hockney view of these parameters:
  /// alpha_ij = C_i + L_ij + C_j, beta^H_ij = t_i + 1/beta_ij + t_j.
  [[nodiscard]] models::HeteroHockney as_hockney() const;

  void validate() const;
};

/// Original 5-parameter model: T_ij(M) = C_i + C_j + M (t_i + 1/b + t_j).
struct LmoOriginalParams {
  std::vector<double> C;
  std::vector<double> t;
  models::PairTable inv_beta;

  [[nodiscard]] int size() const { return int(C.size()); }
  [[nodiscard]] double pt2pt(int i, int j, Bytes m) const;
};

/// Fold the extended model's latencies into the processor constants — what
/// the original model would have estimated on the same cluster (each node
/// absorbs its average half-latency). Used by the separation ablation.
[[nodiscard]] LmoOriginalParams fold_latencies(const LmoParams& p);

}  // namespace lmo::core
