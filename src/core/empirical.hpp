// Empirical parameters of the LMO model (paper Sections III and V).
//
// The analytical point-to-point parameters cannot express TCP-layer
// irregularities of collectives on switched clusters; LMO therefore adds
// per-platform empirical parameters found from observations:
//  * M1, M2: the linear-gather thresholds of eq. (5) — below M1 the max
//    (parallel) branch holds, above M2 the sum (serialized) branch;
//  * the most frequent escalation magnitudes in (M1, M2) with their
//    empirical frequencies, and the probability that an observation still
//    fits the linear (small-message) model, decreasing with size;
//  * the scatter leap threshold and magnitude (Fig. 4) — kept for the
//    ablation even though the paper's final model omits it for simplicity.
#pragma once

#include <vector>

#include "stats/histogram.hpp"
#include "util/bytes.hpp"

namespace lmo::core {

struct GatherEmpirical {
  Bytes m1 = 0;  ///< upper bound of the clean small-message regime
  Bytes m2 = 0;  ///< lower bound of the clean large-message regime

  /// Most frequent escalation magnitudes [s] with frequencies, largest
  /// cluster first (only meaningful inside (m1, m2)).
  std::vector<stats::Mode> escalation_modes;

  /// Probability that a medium-size gather fits the linear model at m1 and
  /// at m2; interpolated linearly in between.
  double linear_prob_at_m1 = 1.0;
  double linear_prob_at_m2 = 1.0;

  [[nodiscard]] bool in_band(Bytes m) const { return m > m1 && m < m2; }

  /// P(observation fits the linear small-message model) at size m.
  [[nodiscard]] double linear_probability(Bytes m) const;

  /// Expected escalation delay per gather at size m: (1 - linear
  /// probability) times the frequency-weighted mean escalation magnitude.
  [[nodiscard]] double expected_escalation(Bytes m) const;

  /// Largest escalation magnitude seen (0.25 s in the paper).
  [[nodiscard]] double max_escalation() const;
};

struct ScatterEmpirical {
  Bytes leap_threshold = 0;  ///< message size at which the leap appears
  double leap_s = 0.0;       ///< magnitude of one leap for the collective
  bool detected = false;

  /// The piecewise-constant extra delay at size m: one leap per full
  /// threshold contained in m ("leaps regularly repeated").
  [[nodiscard]] double extra(Bytes m) const;
};

}  // namespace lmo::core
