// Text serialization of estimated LMO parameters — lets a tool estimate a
// cluster once and reuse the model across sessions (the paper's software
// tool workflow [13]).
#pragma once

#include <string>

#include "core/empirical.hpp"
#include "core/lmo_model.hpp"

namespace lmo::core {

[[nodiscard]] std::string to_text(const LmoParams& params);
[[nodiscard]] LmoParams lmo_params_from_text(const std::string& text);

[[nodiscard]] std::string to_text(const GatherEmpirical& emp);
[[nodiscard]] GatherEmpirical gather_empirical_from_text(
    const std::string& text);

void save_params(const LmoParams& params, const GatherEmpirical& emp,
                 const std::string& path);
struct LoadedParams {
  LmoParams params;
  GatherEmpirical empirical;
};
[[nodiscard]] LoadedParams load_params(const std::string& path);

}  // namespace lmo::core
