// Text serialization of estimated LMO parameters — lets a tool estimate a
// cluster once and reuse the model across sessions (the paper's software
// tool workflow [13]).
#pragma once

#include <string>

#include "core/empirical.hpp"
#include "core/lmo_model.hpp"
#include "obs/json.hpp"

namespace lmo::core {

[[nodiscard]] std::string to_text(const LmoParams& params);
[[nodiscard]] LmoParams lmo_params_from_text(const std::string& text);

[[nodiscard]] std::string to_text(const GatherEmpirical& emp);
[[nodiscard]] GatherEmpirical gather_empirical_from_text(
    const std::string& text);

void save_params(const LmoParams& params, const GatherEmpirical& emp,
                 const std::string& path);
struct LoadedParams {
  LmoParams params;
  GatherEmpirical empirical;
};
[[nodiscard]] LoadedParams load_params(const std::string& path);

/// JSON views of the estimated parameters for run reports:
/// {"size": n, "C": [...], "t": [...], "L": [[...]], "inv_beta": [[...]]}.
[[nodiscard]] obs::Json params_json(const LmoParams& params);
/// {"m1": ..., "m2": ..., "escalation_modes": [{"value","count",
///  "frequency"}], "linear_prob_at_m1": ..., "linear_prob_at_m2": ...}.
[[nodiscard]] obs::Json empirical_json(const GatherEmpirical& emp);

}  // namespace lmo::core
