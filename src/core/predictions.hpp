// LMO predictions of collective execution times (paper Sections III, V).
//
// These are the "intuitive" formulas: serialized root processing appears as
// a sum of processor terms, parallel transmission and remote processing as
// a maximum over destinations, and the empirical parameters capture the
// regime switches of linear gather.
#pragma once

#include <vector>

#include "core/empirical.hpp"
#include "core/lmo_model.hpp"
#include "trees/shapes.hpp"
#include "util/bytes.hpp"

namespace lmo::core {

/// Linear (flat-tree) scatter, eq. (4):
/// (n-1)(C_r + M t_r) + max_i (L_ri + M/beta_ri + C_i + M t_i).
[[nodiscard]] double linear_scatter_time(const LmoParams& p, int root,
                                         Bytes m);

/// Same under the original 5-parameter model (no separate latency):
/// (n-1)(C_r + M t_r) + max_i (M/beta_ri + C_i + M t_i).
[[nodiscard]] double linear_scatter_time(const LmoOriginalParams& p, int root,
                                         Bytes m);

enum class GatherRegime { kSmall, kMedium, kLarge };

struct GatherPrediction {
  GatherRegime regime = GatherRegime::kSmall;
  /// The analytical branch of eq. (5): max branch for small/medium,
  /// sum branch for large.
  double base = 0.0;
  /// Probability-weighted mean escalation (medium regime only).
  double expected_escalation = 0.0;
  /// Worst-case escalation magnitude (medium regime only).
  double max_escalation = 0.0;
  /// P(the observation fits the linear small-message model).
  double linear_probability = 1.0;

  [[nodiscard]] double expected() const { return base + expected_escalation; }
  [[nodiscard]] double worst_case() const { return base + max_escalation; }
};

/// Linear (flat-tree) gather, eq. (5) with the empirical medium band.
[[nodiscard]] GatherPrediction linear_gather_time(const LmoParams& p,
                                                  const GatherEmpirical& emp,
                                                  int root, Bytes m);

/// Binomial scatter under LMO: per subtree root, CPU processing of the
/// child messages is serialized while transmissions and remote processing
/// run in parallel — the recursion eqs. (1)-(2) with separated terms.
/// `mapping` assigns physical ranks to virtual nodes (empty = MPI default).
[[nodiscard]] double binomial_scatter_time(
    const LmoParams& p, int root, Bytes m,
    const std::vector<int>& mapping = {});

/// Binomial gather under LMO (mirror of binomial_scatter_time: children
/// arrive in parallel, the parent's receive processing serializes).
[[nodiscard]] double binomial_gather_time(
    const LmoParams& p, int root, Bytes m,
    const std::vector<int>& mapping = {});

// --- Extension: the same sums-and-maxima style for other collectives. ---

/// Flat-tree broadcast: structurally identical to eq. (4) — the root's
/// (n-1) serialized message preparations plus the slowest parallel
/// delivery (all messages are m bytes).
[[nodiscard]] double linear_bcast_time(const LmoParams& p, int root, Bytes m);

/// Binomial broadcast: the scatter recursion with every arc carrying m
/// bytes.
[[nodiscard]] double binomial_bcast_time(
    const LmoParams& p, int root, Bytes m,
    const std::vector<int>& mapping = {});

/// Flat-tree reduce: linear gather's small branch plus one serialized
/// combine (C_r + m t_r) per received block.
[[nodiscard]] double linear_reduce_time(const LmoParams& p, int root,
                                        Bytes m);

/// Binomial reduce: the gather recursion with a combine per child.
[[nodiscard]] double binomial_reduce_time(
    const LmoParams& p, int root, Bytes m,
    const std::vector<int>& mapping = {});

// --- The zoo: generic tree shapes with segmented pipelining. ---
//
// Each function prices the exact schedule coll::tree_* executes, from the
// same fitted LMO parameters the closed forms use: per-node CPU terms
// (C_i + b t_i per message, serialized on the rank's coroutine), per-node
// egress/ingress wire occupancy (b/beta_ij, serialized per port), and
// L_ij on every arc. `segment` > 0 chunks the message (bcast/reduce) or
// the per-rank block (scatter/gather) into a pipelined series — chunk s+1
// flows down the upper tree while chunk s drains below, which is how a
// segmented chain becomes the classic pipelined broadcast. The evaluator
// walks virtual ranks in topological order, so it is O(n * segments).
// Every (kind, mapping, segment) triple priced here is executable by
// coll::run_decision with the same arguments — the tuner never prices a
// schedule the simulator cannot run.
//
// `topology` (optional) adds hierarchical contention: every transfer also
// occupies the contended shared segments on its path (memory bus,
// oversubscribed uplink), serialized exactly like sim::Fabric does. Flat
// topologies and nullptr price identically to the port-only model.

/// Tree broadcast (every arc carries the full message/segment).
[[nodiscard]] double tree_bcast_time(const LmoParams& p, trees::TreeKind kind,
                                     int root, Bytes m,
                                     const std::vector<int>& mapping = {},
                                     Bytes segment = 0,
                                     const sim::Topology* topology = nullptr);

/// Tree scatter (arc into v carries tree_subtree_size(v) blocks).
[[nodiscard]] double tree_scatter_time(
    const LmoParams& p, trees::TreeKind kind, int root, Bytes m,
    const std::vector<int>& mapping = {}, Bytes segment = 0,
    const sim::Topology* topology = nullptr);

/// Tree gather (mirror of tree_scatter: subtree data travels up).
[[nodiscard]] double tree_gather_time(const LmoParams& p, trees::TreeKind kind,
                                      int root, Bytes m,
                                      const std::vector<int>& mapping = {},
                                      Bytes segment = 0,
                                      const sim::Topology* topology = nullptr);

/// Tree reduce (every arc carries m; one combine per received block).
[[nodiscard]] double tree_reduce_time(const LmoParams& p, trees::TreeKind kind,
                                      int root, Bytes m,
                                      const std::vector<int>& mapping = {},
                                      Bytes segment = 0,
                                      const sim::Topology* topology = nullptr);

/// Composite broadcast: binomial scatter of ceil(m/n) blocks followed by
/// a ring allgather of the same block size (van-de-Geijn style). Both
/// phases are priced by schedule replay (the ring pipelines across steps,
/// unlike the ring_allgather_time bound).
[[nodiscard]] double scatter_allgather_bcast_time(
    const LmoParams& p, int root, Bytes m,
    const sim::Topology* topology = nullptr);

/// Ring allgather: n-1 synchronized steps, each bounded by the slowest
/// neighbour link (approximation: steps do not pipeline).
[[nodiscard]] double ring_allgather_time(const LmoParams& p, Bytes m);

/// Pairwise alltoall: n-1 exchange steps; each step is bounded by the
/// slowest (send-processing + wire + receive-processing) pair active in it.
[[nodiscard]] double pairwise_alltoall_time(const LmoParams& p, Bytes m);

/// Linear scatter with the piecewise leap model — the multi-parameter
/// variant the paper mentions ("we could have included multiple empirical
/// parameters ... a piecewise linear function") but omits for simplicity:
/// eq. (4) plus one detected leap per (n-1) pipelined sends per threshold
/// crossing.
[[nodiscard]] double linear_scatter_time_with_leaps(
    const LmoParams& p, const ScatterEmpirical& emp, int root, Bytes m);

/// LMO-guided processor-to-tree-node mapping for binomial scatter
/// (Hatta-style optimization from the paper's introduction): hill-climbs
/// the mapping under the binomial_scatter_time cost.
struct MappingPlan {
  std::vector<int> mapping;
  double predicted_default = 0.0;
  double predicted_optimized = 0.0;
};
[[nodiscard]] MappingPlan optimize_binomial_scatter_mapping(
    const LmoParams& p, int root, Bytes m);

}  // namespace lmo::core
