#include "core/lmo_model.hpp"

#include <string>

#include "util/error.hpp"

namespace lmo::core {

double LmoParams::pt2pt(int i, int j, Bytes m) const {
  LMO_CHECK(i != j);
  LMO_CHECK(i >= 0 && i < size() && j >= 0 && j < size());
  const auto si = std::size_t(i), sj = std::size_t(j);
  return C[si] + L(i, j) + C[sj] +
         double(m) * (t[si] + inv_beta(i, j) + t[sj]);
}

models::HeteroHockney LmoParams::as_hockney() const {
  const int n = size();
  models::HeteroHockney h;
  h.alpha = models::PairTable(n);
  h.beta = models::PairTable(n);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      h.alpha(i, j) = C[std::size_t(i)] + L(i, j) + C[std::size_t(j)];
      h.beta(i, j) =
          t[std::size_t(i)] + inv_beta(i, j) + t[std::size_t(j)];
    }
  return h;
}

void LmoParams::validate() const {
  LMO_CHECK_MSG(size() >= 2, "LMO model needs >= 2 processors");
  LMO_CHECK(t.size() == C.size());
  LMO_CHECK(L.size() == size());
  LMO_CHECK(inv_beta.size() == size());
}

double LmoOriginalParams::pt2pt(int i, int j, Bytes m) const {
  LMO_CHECK(i != j);
  LMO_CHECK(i >= 0 && i < size() && j >= 0 && j < size());
  const auto si = std::size_t(i), sj = std::size_t(j);
  return C[si] + C[sj] + double(m) * (t[si] + inv_beta(i, j) + t[sj]);
}

LmoParams priced_by_path(const LmoParams& p, const sim::Topology& topo) {
  p.validate();
  LMO_CHECK_MSG(!topo.empty(), "priced_by_path needs a non-empty topology");
  LMO_CHECK_MSG(topo.ranks() == p.size(),
                "topology places " + std::to_string(topo.ranks()) +
                    " ranks, model has " + std::to_string(p.size()));
  LMO_CHECK_MSG(int(p.per_level.size()) == topo.depth(),
                "model has " + std::to_string(p.per_level.size()) +
                    " per-level links, topology has " +
                    std::to_string(topo.depth()) + " levels");
  LmoParams out = p;
  const int n = p.size();
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      const LevelLink& link =
          p.per_level[std::size_t(topo.lca_level(i, j) - 1)];
      out.L(i, j) = link.L;
      out.inv_beta(i, j) = link.inv_beta;
    }
  return out;
}

LmoOriginalParams fold_latencies(const LmoParams& p) {
  p.validate();
  const int n = p.size();
  LmoOriginalParams o;
  o.C = p.C;
  o.t = p.t;
  o.inv_beta = p.inv_beta;
  for (int i = 0; i < n; ++i) {
    double mean_half_latency = 0.0;
    for (int j = 0; j < n; ++j)
      if (j != i) mean_half_latency += p.L(i, j) / 2.0;
    o.C[std::size_t(i)] += mean_half_latency / double(n - 1);
  }
  return o;
}

}  // namespace lmo::core
