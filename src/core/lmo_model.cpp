#include "core/lmo_model.hpp"

#include "util/error.hpp"

namespace lmo::core {

double LmoParams::pt2pt(int i, int j, Bytes m) const {
  LMO_CHECK(i != j);
  LMO_CHECK(i >= 0 && i < size() && j >= 0 && j < size());
  const auto si = std::size_t(i), sj = std::size_t(j);
  return C[si] + L(i, j) + C[sj] +
         double(m) * (t[si] + inv_beta(i, j) + t[sj]);
}

models::HeteroHockney LmoParams::as_hockney() const {
  const int n = size();
  models::HeteroHockney h;
  h.alpha = models::PairTable(n);
  h.beta = models::PairTable(n);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      h.alpha(i, j) = C[std::size_t(i)] + L(i, j) + C[std::size_t(j)];
      h.beta(i, j) =
          t[std::size_t(i)] + inv_beta(i, j) + t[std::size_t(j)];
    }
  return h;
}

void LmoParams::validate() const {
  LMO_CHECK_MSG(size() >= 2, "LMO model needs >= 2 processors");
  LMO_CHECK(t.size() == C.size());
  LMO_CHECK(L.size() == size());
  LMO_CHECK(inv_beta.size() == size());
}

double LmoOriginalParams::pt2pt(int i, int j, Bytes m) const {
  LMO_CHECK(i != j);
  LMO_CHECK(i >= 0 && i < size() && j >= 0 && j < size());
  const auto si = std::size_t(i), sj = std::size_t(j);
  return C[si] + C[sj] + double(m) * (t[si] + inv_beta(i, j) + t[sj]);
}

LmoOriginalParams fold_latencies(const LmoParams& p) {
  p.validate();
  const int n = p.size();
  LmoOriginalParams o;
  o.C = p.C;
  o.t = p.t;
  o.inv_beta = p.inv_beta;
  for (int i = 0; i < n; ++i) {
    double mean_half_latency = 0.0;
    for (int j = 0; j < n; ++j)
      if (j != i) mean_half_latency += p.L(i, j) / 2.0;
    o.C[std::size_t(i)] += mean_half_latency / double(n - 1);
  }
  return o;
}

}  // namespace lmo::core
