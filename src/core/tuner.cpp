#include "core/tuner.hpp"

#include <algorithm>

#include "trees/mapping.hpp"
#include "util/error.hpp"
#include "util/format.hpp"
#include "util/sweep.hpp"

namespace lmo::core {

const char* collective_name(CollectiveKind kind) {
  switch (kind) {
    case CollectiveKind::kScatter:
      return "scatter";
    case CollectiveKind::kGather:
      return "gather";
    case CollectiveKind::kBcast:
      return "bcast";
    case CollectiveKind::kReduce:
      return "reduce";
  }
  return "?";
}

CollectiveKind parse_collective(const std::string& name) {
  for (const CollectiveKind kind :
       {CollectiveKind::kScatter, CollectiveKind::kGather,
        CollectiveKind::kBcast, CollectiveKind::kReduce})
    if (name == collective_name(kind)) return kind;
  throw Error("unknown collective '" + name +
              "' (expected scatter, gather, bcast, or reduce)");
}

const char* algorithm_name(AlgorithmId id) {
  switch (id) {
    case AlgorithmId::kLinear:
      return "linear";
    case AlgorithmId::kBinomial:
      return "binomial";
    case AlgorithmId::kChain:
      return "chain";
    case AlgorithmId::kBinaryTree:
      return "binary-tree";
    case AlgorithmId::kScatterAllgather:
      return "scatter-allgather";
  }
  return "?";
}

AlgorithmId parse_algorithm(const std::string& name) {
  for (const AlgorithmId id : all_algorithms())
    if (name == algorithm_name(id)) return id;
  throw Error("unknown algorithm '" + name +
              "' (expected linear, binomial, chain, binary-tree, or "
              "scatter-allgather)");
}

const std::vector<AlgorithmId>& all_algorithms() {
  static const std::vector<AlgorithmId> kAll = {
      AlgorithmId::kLinear, AlgorithmId::kBinomial, AlgorithmId::kChain,
      AlgorithmId::kBinaryTree, AlgorithmId::kScatterAllgather};
  return kAll;
}

std::string TunedDecision::describe() const {
  std::string out = algorithm_name(algorithm);
  if (!mapping.empty()) out += "+mapping";
  if (segment > 0) {
    // A segmented linear gather IS the Fig. 7 split plan; keep its name.
    const bool is_split = kind == CollectiveKind::kGather &&
                          algorithm == AlgorithmId::kLinear;
    out += (is_split ? " split@" : " seg@") + format_bytes(segment);
  }
  return out;
}

obs::Json TunedDecision::to_json() const {
  obs::Json j = obs::Json::object();
  j["op"] = collective_name(kind);
  j["algorithm"] = algorithm_name(algorithm);
  j["root"] = root;
  j["message"] = double(message);
  j["segment"] = double(segment);
  obs::Json map = obs::Json::array();
  for (const int rank : mapping) map.push_back(rank);
  j["mapping"] = std::move(map);
  j["describe"] = describe();
  j["predicted_seconds"] = predicted_seconds;
  return j;
}

Tuner::Tuner(LmoParams params, GatherEmpirical gather_empirical,
             TunerOptions options)
    : params_(std::move(params)),
      gather_empirical_(gather_empirical),
      options_(std::move(options)) {
  params_.validate();
}

namespace {
trees::TreeKind shape_of(AlgorithmId id) {
  switch (id) {
    case AlgorithmId::kLinear:
      return trees::TreeKind::kFlat;
    case AlgorithmId::kBinomial:
      return trees::TreeKind::kBinomial;
    case AlgorithmId::kChain:
      return trees::TreeKind::kChain;
    case AlgorithmId::kBinaryTree:
      return trees::TreeKind::kBinary;
    case AlgorithmId::kScatterAllgather:
      break;
  }
  LMO_CHECK_MSG(false, "algorithm has no tree shape");
  return trees::TreeKind::kFlat;
}
}  // namespace

double Tuner::predict(CollectiveKind kind, AlgorithmId id, int root, Bytes m,
                      const std::vector<int>& mapping, Bytes segment) const {
  const sim::Topology* topo = options_.topology;
  const bool contended =
      topo && !topo->empty() && topo->constrains_concurrency();
  if (id == AlgorithmId::kScatterAllgather) {
    LMO_CHECK_MSG(kind == CollectiveKind::kBcast,
                  "scatter+allgather is a broadcast algorithm");
    return scatter_allgather_bcast_time(params_, root, m, topo);
  }
  // The empirical gather band rides on top of whichever base the topology
  // calls for: the closed form on flat clusters, the schedule evaluator's
  // contention-aware base otherwise. The large regime's serialized-sum
  // branch always keeps the closed form — that behavior is a protocol
  // switch, not a wire effect.
  if (segment <= 0 && id == AlgorithmId::kLinear &&
      kind == CollectiveKind::kGather) {
    const GatherPrediction g =
        linear_gather_time(params_, gather_empirical_, root, m);
    if (!contended || g.regime == GatherRegime::kLarge) return g.expected();
    return tree_gather_time(params_, trees::TreeKind::kFlat, root, m, mapping,
                            0, topo) +
           g.expected_escalation;
  }
  // Unsegmented linear and binomial keep the paper's closed forms on flat
  // clusters; contended topologies route through the schedule evaluator,
  // which the closed forms cannot price (cross-transfer contention).
  if (!contended && segment <= 0 && id == AlgorithmId::kLinear) {
    switch (kind) {
      case CollectiveKind::kScatter:
        return linear_scatter_time(params_, root, m);
      case CollectiveKind::kGather:
        break;  // handled above
      case CollectiveKind::kBcast:
        return linear_bcast_time(params_, root, m);
      case CollectiveKind::kReduce:
        return linear_reduce_time(params_, root, m);
    }
  }
  if (!contended && segment <= 0 && id == AlgorithmId::kBinomial) {
    switch (kind) {
      case CollectiveKind::kScatter:
        return binomial_scatter_time(params_, root, m, mapping);
      case CollectiveKind::kGather:
        return binomial_gather_time(params_, root, m, mapping);
      case CollectiveKind::kBcast:
        return binomial_bcast_time(params_, root, m, mapping);
      case CollectiveKind::kReduce:
        return binomial_reduce_time(params_, root, m, mapping);
    }
  }
  // Everything else goes through the schedule evaluator, which prices the
  // exact chunked schedule coll::tree_* executes.
  const trees::TreeKind shape = shape_of(id);
  switch (kind) {
    case CollectiveKind::kScatter:
      return tree_scatter_time(params_, shape, root, m, mapping, segment,
                               topo);
    case CollectiveKind::kGather:
      return tree_gather_time(params_, shape, root, m, mapping, segment, topo);
    case CollectiveKind::kBcast:
      return tree_bcast_time(params_, shape, root, m, mapping, segment, topo);
    case CollectiveKind::kReduce:
      return tree_reduce_time(params_, shape, root, m, mapping, segment, topo);
  }
  LMO_CHECK_MSG(false, "unknown collective kind");
  return 0.0;
}

std::vector<TunedDecision> Tuner::candidates(CollectiveKind kind, int root,
                                             Bytes m) const {
  LMO_CHECK(root >= 0 && root < params_.size());
  LMO_CHECK(m >= 0);
  std::vector<TunedDecision> out;
  auto add = [&](AlgorithmId id, std::vector<int> mapping, Bytes segment) {
    for (const TunedDecision& d : out)
      if (d.algorithm == id && d.segment == segment &&
          d.mapping == mapping)
        return;  // deduplicate (e.g. split chunk == a grid segment)
    TunedDecision d;
    d.kind = kind;
    d.algorithm = id;
    d.root = root;
    d.message = m;
    d.mapping = std::move(mapping);
    d.segment = segment;
    d.predicted_seconds = predict(kind, id, root, m, d.mapping, segment);
    out.push_back(std::move(d));
  };

  // The paper's native pair first: ties go to the simplest algorithm.
  add(AlgorithmId::kLinear, {}, 0);
  add(AlgorithmId::kBinomial, {}, 0);

  // Fig. 7 split plan: a segmented linear gather chunked at the empirical
  // band edge m1 (the split_gather series).
  if (kind == CollectiveKind::kGather && options_.split_gathers) {
    const auto plan =
        plan_optimized_gather(params_, gather_empirical_, root, m);
    if (plan.split) add(AlgorithmId::kLinear, {}, plan.chunk);
  }

  // Binomial with an LMO-optimized processor-to-tree mapping.
  if (options_.optimize_mappings) {
    const auto result = trees::optimize_mapping(
        params_.size(), root, [&](const std::vector<int>& mapping) {
          return predict(kind, AlgorithmId::kBinomial, root, m, mapping, 0);
        });
    add(AlgorithmId::kBinomial, result.mapping, 0);
  }

  // The tree zoo with segmented pipelining.
  if (options_.tree_zoo) {
    for (const AlgorithmId id :
         {AlgorithmId::kChain, AlgorithmId::kBinaryTree}) {
      add(id, {}, 0);
      for (const Bytes seg : options_.segment_candidates)
        if (seg > 0 && seg < m) add(id, {}, seg);
    }
    for (const Bytes seg : options_.segment_candidates) {
      if (seg > 0 && seg < m) {
        add(AlgorithmId::kLinear, {}, seg);
        add(AlgorithmId::kBinomial, {}, seg);
      }
    }
    if (kind == CollectiveKind::kBcast)
      add(AlgorithmId::kScatterAllgather, {}, 0);
  }
  return out;
}

TunedDecision Tuner::decide(CollectiveKind kind, int root, Bytes m) const {
  const std::vector<TunedDecision> all = candidates(kind, root, m);
  LMO_CHECK(!all.empty());
  const TunedDecision* best = &all.front();
  for (const TunedDecision& d : all)
    if (d.predicted_seconds < best->predicted_seconds) best = &d;
  return *best;
}

std::vector<Bytes> Tuner::crossovers(CollectiveKind kind, int root, Bytes lo,
                                     Bytes hi) const {
  LMO_CHECK(lo >= 0 && hi > lo);
  // Only the algorithm choice defines a crossover; segment/mapping changes
  // within one algorithm do not count.
  auto algo_at = [&](Bytes m) { return decide(kind, root, m).algorithm; };
  // Endpoint comparison alone misses switch-and-switch-back intervals, so
  // scan a geometric grid first, then bisect every flipped interval.
  const std::vector<Bytes> grid = geometric_sizes(lo, hi, 33);
  std::vector<Bytes> flips;
  AlgorithmId prev = algo_at(grid.front());
  for (std::size_t i = 1; i < grid.size(); ++i) {
    if (grid[i] <= grid[i - 1]) continue;
    const AlgorithmId next = algo_at(grid[i]);
    if (next == prev) continue;
    Bytes a = grid[i - 1], b = grid[i];
    while (b - a > 1) {
      const Bytes mid = a + (b - a) / 2;
      (algo_at(mid) == prev ? a : b) = mid;
    }
    flips.push_back(b);
    prev = next;
  }
  return flips;
}

Bytes Tuner::crossover(CollectiveKind kind, int root, Bytes lo,
                       Bytes hi) const {
  const std::vector<Bytes> flips = crossovers(kind, root, lo, hi);
  return flips.empty() ? 0 : flips.front();
}

double Tuner::price(const TunedDecision& d) const {
  return predict(d.kind, d.algorithm, d.root, d.message, d.mapping,
                 d.segment);
}

}  // namespace lmo::core
