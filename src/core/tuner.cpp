#include "core/tuner.hpp"

#include <algorithm>

#include "trees/mapping.hpp"
#include "util/error.hpp"
#include "util/format.hpp"

namespace lmo::core {

std::string TunedDecision::describe() const {
  std::string out =
      algorithm == ScatterAlgorithm::kLinear ? "linear" : "binomial";
  if (!mapping.empty()) out += "+mapping";
  if (split_chunk > 0)
    out += " split@" + format_bytes(split_chunk);
  return out;
}

Tuner::Tuner(LmoParams params, GatherEmpirical gather_empirical,
             TunerOptions options)
    : params_(std::move(params)),
      gather_empirical_(gather_empirical),
      options_(options) {
  params_.validate();
}

double Tuner::predict_linear(CollectiveKind kind, int root, Bytes m) const {
  switch (kind) {
    case CollectiveKind::kScatter:
      return linear_scatter_time(params_, root, m);
    case CollectiveKind::kGather:
      return linear_gather_time(params_, gather_empirical_, root, m)
          .expected();
    case CollectiveKind::kBcast:
      return linear_bcast_time(params_, root, m);
    case CollectiveKind::kReduce:
      return linear_reduce_time(params_, root, m);
  }
  LMO_CHECK_MSG(false, "unknown collective kind");
  return 0.0;
}

double Tuner::predict_binomial(CollectiveKind kind, int root, Bytes m,
                               const std::vector<int>& mapping) const {
  switch (kind) {
    case CollectiveKind::kScatter:
      return binomial_scatter_time(params_, root, m, mapping);
    case CollectiveKind::kGather:
      return binomial_gather_time(params_, root, m, mapping);
    case CollectiveKind::kBcast:
      return binomial_bcast_time(params_, root, m, mapping);
    case CollectiveKind::kReduce:
      return binomial_reduce_time(params_, root, m, mapping);
  }
  LMO_CHECK_MSG(false, "unknown collective kind");
  return 0.0;
}

TunedDecision Tuner::decide(CollectiveKind kind, int root, Bytes m) const {
  LMO_CHECK(root >= 0 && root < params_.size());
  LMO_CHECK(m >= 0);
  TunedDecision best;
  best.kind = kind;
  best.algorithm = ScatterAlgorithm::kLinear;
  best.predicted_seconds = predict_linear(kind, root, m);

  // Split-gather candidate (Fig. 7).
  if (kind == CollectiveKind::kGather && options_.split_gathers) {
    const auto plan =
        plan_optimized_gather(params_, gather_empirical_, root, m);
    if (plan.split && plan.predicted_split < best.predicted_seconds) {
      best.split_chunk = plan.chunk;
      best.predicted_seconds = plan.predicted_split;
    }
  }

  // Binomial candidate, default mapping.
  const double binom = predict_binomial(kind, root, m, {});
  if (binom < best.predicted_seconds) {
    best.algorithm = ScatterAlgorithm::kBinomial;
    best.mapping.clear();
    best.split_chunk = 0;
    best.predicted_seconds = binom;
  }

  // Binomial candidate with an optimized mapping.
  if (options_.optimize_mappings) {
    const auto result = trees::optimize_mapping(
        params_.size(), root, [&](const std::vector<int>& mapping) {
          return predict_binomial(kind, root, m, mapping);
        });
    if (result.cost < best.predicted_seconds) {
      best.algorithm = ScatterAlgorithm::kBinomial;
      best.mapping = result.mapping;
      best.split_chunk = 0;
      best.predicted_seconds = result.cost;
    }
  }
  return best;
}

Bytes Tuner::crossover(CollectiveKind kind, int root, Bytes lo,
                       Bytes hi) const {
  LMO_CHECK(lo >= 0 && hi > lo);
  // Only the algorithm choice matters for the crossover.
  auto algo_at = [&](Bytes m) { return decide(kind, root, m).algorithm; };
  const auto at_lo = algo_at(lo);
  if (algo_at(hi) == at_lo) return 0;
  Bytes a = lo, b = hi;
  while (b - a > 1) {
    const Bytes mid = a + (b - a) / 2;
    (algo_at(mid) == at_lo ? a : b) = mid;
  }
  return b;
}

}  // namespace lmo::core
