#include "models/hockney.hpp"

#include <algorithm>
#include <cmath>

#include "trees/binomial.hpp"

namespace lmo::models {

double Hockney::flat_collective(int n, Bytes m, FlatAssumption a) const {
  LMO_CHECK(n >= 2);
  const double one = pt2pt(m);
  return a == FlatAssumption::kSequential ? double(n - 1) * one : one;
}

double Hockney::binomial_collective(int n, Bytes m) const {
  LMO_CHECK(n >= 2);
  return double(trees::binomial_rounds(n)) * alpha +
         double(n - 1) * beta * double(m);
}

double HeteroHockney::flat_collective(int root, Bytes m,
                                      FlatAssumption a) const {
  const int n = size();
  LMO_CHECK(n >= 2);
  LMO_CHECK(root >= 0 && root < n);
  double sum = 0.0, mx = 0.0;
  for (int i = 0; i < n; ++i) {
    if (i == root) continue;
    const double t = pt2pt(root, i, m);
    sum += t;
    mx = std::max(mx, t);
  }
  return a == FlatAssumption::kSequential ? sum : mx;
}

namespace {
/// Execution time of the binomial subtree whose root sits at virtual rank
/// `v` and owns `span` virtual slots (eq. 1), counted from the moment the
/// subtree root holds its data.
double subtree_time(const HeteroHockney& h, const std::vector<int>& mapping,
                    int root, int n, Bytes m, int v, int span) {
  if (span <= 1) return 0.0;
  int half = 1;
  while (half * 2 < span) half *= 2;  // largest power of two below span
  const int s = v + half;
  if (s >= n)  // clamped tree: this half is empty, recurse shallower
    return subtree_time(h, mapping, root, n, m, v, half);
  const int pr = trees::map_rank(mapping, v, root, n);
  const int ps = trees::map_rank(mapping, s, root, n);
  const int blocks = trees::binomial_subtree_blocks(s, n);
  const double edge =
      h.alpha(pr, ps) + h.beta(pr, ps) * double(blocks) * double(m);
  const double left = subtree_time(h, mapping, root, n, m, v, half);
  const double right =
      subtree_time(h, mapping, root, n, m, s, span - half);
  return edge + std::max(left, right);
}
}  // namespace

double HeteroHockney::binomial_collective(
    int root, Bytes m, const std::vector<int>& mapping) const {
  const int n = size();
  LMO_CHECK(n >= 2);
  LMO_CHECK(root >= 0 && root < n);
  int span = 1;
  while (span < n) span *= 2;
  return subtree_time(*this, mapping, root, n, m, 0, span);
}

Hockney HeteroHockney::averaged() const {
  return Hockney{alpha.off_diagonal_mean(), beta.off_diagonal_mean()};
}

}  // namespace lmo::models
