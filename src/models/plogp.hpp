// The parameterized LogP model (Kielmann et al.; paper Section II).
//
// All parameters except the latency are piecewise-linear functions of the
// message size: send overhead o_s(M), receive overhead o_r(M), and gap
// g(M) >= max(o_s, o_r). Point-to-point time is L + g(M); linear
// scatter/gather is L + (n-1) g(M) (Table II).
#pragma once

#include <vector>

#include "models/pair_table.hpp"
#include "stats/piecewise.hpp"
#include "util/bytes.hpp"
#include "util/error.hpp"

namespace lmo::models {

struct PLogP {
  double L = 0.0;
  stats::PiecewiseLinear os;   ///< send overhead o_s(M)
  stats::PiecewiseLinear orr;  ///< receive overhead o_r(M)
  stats::PiecewiseLinear g;    ///< gap g(M)

  [[nodiscard]] double pt2pt(Bytes m) const {
    LMO_CHECK(!g.empty());
    return L + g(double(m));
  }

  /// Table II: L + (n-1) g(M).
  [[nodiscard]] double flat_collective(int n, Bytes m) const {
    LMO_CHECK(n >= 2);
    LMO_CHECK(!g.empty());
    return L + double(n - 1) * g(double(m));
  }
};

/// Heterogeneous PLogP — the extension the paper sketches in Section II
/// and leaves as "a subject of separate research": the overheads o_s(M),
/// o_r(M) are *processor* properties and are averaged per processor over
/// all links it participates in, while the latency L and gap g(M) mix
/// processor and network contributions and therefore stay per-link.
struct HeteroPLogP {
  PairTable L;                                   ///< per link
  std::vector<std::vector<stats::PiecewiseLinear>> g;  ///< per link, [i][j]
  std::vector<stats::PiecewiseLinear> os;        ///< per processor
  std::vector<stats::PiecewiseLinear> orr;       ///< per processor

  [[nodiscard]] int size() const { return L.size(); }

  [[nodiscard]] double pt2pt(int i, int j, Bytes m) const {
    LMO_CHECK(i != j && i >= 0 && j >= 0 && i < size() && j < size());
    return L(i, j) + g[std::size_t(i)][std::size_t(j)](double(m));
  }

  /// Heterogeneous flat scatter/gather: the root's gaps toward the n-1
  /// destinations serialize (sum of per-link gaps), one slowest latency on
  /// top — the natural per-link refinement of Table II's L + (n-1) g(M).
  [[nodiscard]] double flat_collective(int root, Bytes m) const;
};

}  // namespace lmo::models
