// LogP and LogGP models (paper Section II).
//
// LogP:  point-to-point of a short message costs L + 2o; a series of short
//        messages is paced by the gap g.
// LogGP: adds the gap-per-byte G for long messages:
//        T(M) = L + 2o + (M-1) G, and m sends cost
//        L + 2o + (M-1) G + (m-1) g.
//
// Both models mix processor and network contributions in g and G, which is
// exactly the conflation the paper criticizes. Heterogeneous extension:
// per-pair parameter tables, averaged for the homogeneous view.
#pragma once

#include "models/pair_table.hpp"
#include "util/bytes.hpp"

namespace lmo::models {

struct LogP {
  double L = 0.0;  ///< network latency upper bound [s]
  double o = 0.0;  ///< send/receive overhead [s]
  double g = 0.0;  ///< gap between consecutive messages [s]

  /// Short-message point-to-point: L + 2o.
  [[nodiscard]] double pt2pt() const { return L + 2.0 * o; }

  /// k short messages pipelined from one sender: L + 2o + (k-1) g.
  [[nodiscard]] double message_series(int k) const;
};

struct LogGP {
  double L = 0.0;  ///< latency [s]
  double o = 0.0;  ///< overhead [s]
  double g = 0.0;  ///< gap per message [s]
  double G = 0.0;  ///< gap per byte [s/B]

  [[nodiscard]] double pt2pt(Bytes m) const {
    return L + 2.0 * o + double(m > 0 ? m - 1 : 0) * G;
  }

  /// k sends of M bytes from one sender:
  /// L + 2o + (M-1)G + (k-1)g.
  [[nodiscard]] double message_series(int k, Bytes m) const;

  /// Linear scatter/gather, Table II:
  /// L + 2o + (n-1)(M-1)G + (n-2)g.
  [[nodiscard]] double flat_collective(int n, Bytes m) const;
};

struct HeteroLogGP {
  PairTable L, o, g, G;

  [[nodiscard]] int size() const { return L.size(); }
  [[nodiscard]] double pt2pt(int i, int j, Bytes m) const {
    return L(i, j) + 2.0 * o(i, j) + double(m > 0 ? m - 1 : 0) * G(i, j);
  }
  /// Averaged homogeneous view.
  [[nodiscard]] LogGP averaged() const;
};

}  // namespace lmo::models
