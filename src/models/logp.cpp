#include "models/logp.hpp"

namespace lmo::models {

double LogP::message_series(int k) const {
  LMO_CHECK(k >= 1);
  return L + 2.0 * o + double(k - 1) * g;
}

double LogGP::message_series(int k, Bytes m) const {
  LMO_CHECK(k >= 1);
  return pt2pt(m) + double(k - 1) * g;
}

double LogGP::flat_collective(int n, Bytes m) const {
  LMO_CHECK(n >= 2);
  return L + 2.0 * o + double(n - 1) * double(m > 0 ? m - 1 : 0) * G +
         double(n - 2) * g;
}

LogGP HeteroLogGP::averaged() const {
  return LogGP{L.off_diagonal_mean(), o.off_diagonal_mean(),
               g.off_diagonal_mean(), G.off_diagonal_mean()};
}

}  // namespace lmo::models
