// The Hockney model and its heterogeneous extension (paper Section II).
//
// Homogeneous:   T(M) = alpha + beta * M
// Heterogeneous: T_ij(M) = alpha_ij + beta_ij * M
//
// Because Hockney folds processor and network contributions into two
// integral parameters, a flat-tree collective can only be modelled under
// one of two assumptions — fully sequential or fully parallel — and the
// paper shows both are wrong on a switched cluster (Fig. 1). Both variants
// are provided, plus the binomial predictions: the homogeneous closed form
// (eq. 3) and the recursive heterogeneous formula (eqs. 1-2).
#pragma once

#include <vector>

#include "models/pair_table.hpp"
#include "util/bytes.hpp"

namespace lmo::models {

/// Flat-tree (linear) collective modelling assumption (Fig. 1).
enum class FlatAssumption {
  kSequential,  ///< point-to-points back to back: sum
  kParallel,    ///< point-to-points fully concurrent: max
};

// ------------------------------------------------------------ homogeneous

struct Hockney {
  double alpha = 0.0;  ///< latency [s]
  double beta = 0.0;   ///< inverse bandwidth [s/B]

  [[nodiscard]] double pt2pt(Bytes m) const {
    return alpha + beta * double(m);
  }

  /// Linear scatter == linear gather under Hockney (Table II):
  /// (n-1)(alpha + beta M) sequential, alpha + beta M parallel.
  [[nodiscard]] double flat_collective(int n, Bytes m,
                                       FlatAssumption a) const;

  /// Binomial scatter/gather, eq. (3): ceil(log2 n) alpha + (n-1) beta M.
  [[nodiscard]] double binomial_collective(int n, Bytes m) const;
};

// ---------------------------------------------------------- heterogeneous

struct HeteroHockney {
  PairTable alpha;  ///< alpha_ij [s]
  PairTable beta;   ///< beta_ij [s/B]

  [[nodiscard]] int size() const { return alpha.size(); }

  [[nodiscard]] double pt2pt(int i, int j, Bytes m) const {
    return alpha(i, j) + beta(i, j) * double(m);
  }

  /// Sum or max of (alpha_ri + beta_ri M) over i != r (Table II / Fig. 1).
  [[nodiscard]] double flat_collective(int root, Bytes m,
                                       FlatAssumption a) const;

  /// Recursive binomial formula, eqs. (1)-(2): the largest sub-subtree's
  /// transfer cost plus the max over the two halves' recursions.
  /// `mapping` assigns physical ranks to virtual tree nodes (empty = MPI
  /// default (v + root) mod n).
  [[nodiscard]] double binomial_collective(
      int root, Bytes m, const std::vector<int>& mapping = {}) const;

  /// Averaged homogeneous model (Section II's first approach).
  [[nodiscard]] Hockney averaged() const;
};

}  // namespace lmo::models
