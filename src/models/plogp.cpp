#include "models/plogp.hpp"

#include <algorithm>

namespace lmo::models {

double HeteroPLogP::flat_collective(int root, Bytes m) const {
  const int n = size();
  LMO_CHECK(n >= 2);
  LMO_CHECK(root >= 0 && root < n);
  double gap_sum = 0.0;
  double max_latency = 0.0;
  for (int i = 0; i < n; ++i) {
    if (i == root) continue;
    gap_sum += g[std::size_t(root)][std::size_t(i)](double(m));
    max_latency = std::max(max_latency, L(root, i));
  }
  return max_latency + gap_sum;
}

}  // namespace lmo::models
