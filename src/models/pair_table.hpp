// Dense per-pair parameter storage shared by the heterogeneous models.
#pragma once

#include <vector>

#include "util/error.hpp"

namespace lmo::models {

/// n x n table of doubles with a zero diagonal; used for alpha_ij, beta_ij,
/// L_ij, 1/beta_ij and friends.
class PairTable {
 public:
  PairTable() = default;
  explicit PairTable(int n, double fill = 0.0)
      : n_(n), v_(std::size_t(n) * std::size_t(n), fill) {
    LMO_CHECK(n >= 0);
  }

  [[nodiscard]] int size() const { return n_; }

  [[nodiscard]] double& operator()(int i, int j) {
    LMO_ASSERT(i >= 0 && i < n_ && j >= 0 && j < n_);
    return v_[std::size_t(i) * std::size_t(n_) + std::size_t(j)];
  }
  [[nodiscard]] double operator()(int i, int j) const {
    LMO_ASSERT(i >= 0 && i < n_ && j >= 0 && j < n_);
    return v_[std::size_t(i) * std::size_t(n_) + std::size_t(j)];
  }

  /// Mean over all off-diagonal entries (the "treat it as homogeneous"
  /// averaging of Section II).
  [[nodiscard]] double off_diagonal_mean() const {
    LMO_CHECK(n_ >= 2);
    double sum = 0.0;
    for (int i = 0; i < n_; ++i)
      for (int j = 0; j < n_; ++j)
        if (i != j) sum += (*this)(i, j);
    return sum / double(n_ * (n_ - 1));
  }

 private:
  int n_ = 0;
  std::vector<double> v_;
};

}  // namespace lmo::models
