// Linear solvers for the estimation systems.
#pragma once

#include <optional>
#include <vector>

#include "linalg/matrix.hpp"

namespace lmo::linalg {

/// Solves A x = b by Gaussian elimination with partial pivoting.
/// Returns nullopt when A is (numerically) singular.
[[nodiscard]] std::optional<std::vector<double>> solve(Matrix a,
                                                       std::vector<double> b);

/// Least-squares solution of an overdetermined system via the normal
/// equations A^T A x = A^T b. Returns nullopt when A^T A is singular.
[[nodiscard]] std::optional<std::vector<double>> solve_least_squares(
    const Matrix& a, const std::vector<double>& b);

}  // namespace lmo::linalg
