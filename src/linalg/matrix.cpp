#include "linalg/matrix.hpp"

namespace lmo::linalg {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    LMO_CHECK_MSG(r.size() == cols_, "ragged initializer");
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix operator*(const Matrix& a, const Matrix& b) {
  LMO_CHECK(a.cols() == b.rows());
  Matrix out(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) out(i, j) += aik * b(k, j);
    }
  return out;
}

std::vector<double> operator*(const Matrix& a, const std::vector<double>& x) {
  LMO_CHECK(a.cols() == x.size());
  std::vector<double> y(a.rows(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j) y[i] += a(i, j) * x[j];
  return y;
}

}  // namespace lmo::linalg
