#include "linalg/solve.hpp"

#include <cmath>

namespace lmo::linalg {

std::optional<std::vector<double>> solve(Matrix a, std::vector<double> b) {
  LMO_CHECK(a.rows() == a.cols());
  LMO_CHECK(a.rows() == b.size());
  const std::size_t n = a.rows();

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r)
      if (std::fabs(a(r, col)) > std::fabs(a(pivot, col))) pivot = r;
    if (std::fabs(a(pivot, col)) < 1e-300) return std::nullopt;
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a(col, c), a(pivot, c));
      std::swap(b[col], b[pivot]);
    }
    const double inv = 1.0 / a(col, col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = a(r, col) * inv;
      if (f == 0.0) continue;
      a(r, col) = 0.0;
      for (std::size_t c = col + 1; c < n; ++c) a(r, c) -= f * a(col, c);
      b[r] -= f * b[col];
    }
  }
  // Back substitution.
  std::vector<double> x(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double acc = b[i];
    for (std::size_t c = i + 1; c < n; ++c) acc -= a(i, c) * x[c];
    x[i] = acc / a(i, i);
  }
  return x;
}

std::optional<std::vector<double>> solve_least_squares(
    const Matrix& a, const std::vector<double>& b) {
  LMO_CHECK(a.rows() == b.size());
  LMO_CHECK(a.rows() >= a.cols());
  const Matrix at = a.transposed();
  return solve(at * a, at * b);
}

}  // namespace lmo::linalg
