// Small dense row-major matrices.
//
// The LMO estimator builds and solves per-triplet linear systems (eqs. 6-11
// of the paper); these are tiny (<= 6x6), so a simple dense representation
// with bounds-checked access is the right tool.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "util/error.hpp"

namespace lmo::linalg {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Row-wise construction: Matrix{{1,2},{3,4}}.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) {
    LMO_ASSERT(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const {
    LMO_ASSERT(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  [[nodiscard]] static Matrix identity(std::size_t n);
  [[nodiscard]] Matrix transposed() const;

  friend Matrix operator*(const Matrix& a, const Matrix& b);
  friend std::vector<double> operator*(const Matrix& a,
                                       const std::vector<double>& x);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace lmo::linalg
