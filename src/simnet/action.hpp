// Action: the engine's event closure — a move-only callable with inline
// small-buffer storage.
//
// std::function is the wrong type for a discrete-event hot path: it is
// copyable (so every capture must be too), and typical implementations
// heap-allocate captures beyond two or three words. Engine events are
// scheduled and fired millions of times per simulation, and all of the
// session's closures are a few pointers (a coroutine handle, a session
// pointer, a rank, a timestamp), so Action stores captures up to
// kInlineSize bytes inline and only spills genuinely large callables to
// the heap. Moves relocate the inline buffer (noexcept), which is what
// lets the engine's binary heap shuffle events around without touching
// the allocator.
#pragma once

#include <cstddef>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace lmo::sim {

class Action {
 public:
  /// Inline capture budget. Covers every closure the simulation core
  /// schedules (the largest is ~32 bytes); measured by the
  /// sim.actions_spilled counter staying zero.
  static constexpr std::size_t kInlineSize = 48;
  static constexpr std::size_t kInlineAlign = alignof(std::max_align_t);

  Action() noexcept = default;
  Action(std::nullptr_t) noexcept {}

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, Action> &&
                                        std::is_invocable_r_v<void, D&>>>
  Action(F&& f) {  // NOLINT(google-explicit-constructor) — callable wrapper
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      ops_ = &kHeapOps<D>;
    }
  }

  Action(Action&& o) noexcept { move_from(o); }
  Action& operator=(Action&& o) noexcept {
    if (this != &o) {
      destroy();
      move_from(o);
    }
    return *this;
  }
  Action(const Action&) = delete;
  Action& operator=(const Action&) = delete;
  ~Action() { destroy(); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return ops_ != nullptr;
  }

  void operator()() { ops_->invoke(buf_); }

  /// True if the callable spilled to the heap (capture > kInlineSize or
  /// over-aligned or throwing move). Exposed for the allocation counters.
  [[nodiscard]] bool heap_allocated() const noexcept {
    return ops_ != nullptr && ops_->heap;
  }

  /// Whether a callable of type D would be stored inline.
  template <typename D>
  static constexpr bool fits_inline() {
    return sizeof(D) <= kInlineSize && alignof(D) <= kInlineAlign &&
           std::is_nothrow_move_constructible_v<D>;
  }

 private:
  struct Ops {
    void (*invoke)(void* p);
    /// Move-construct into dst from src, then destroy src's callable.
    /// Null means "relocate by memcpy" — the fast path for trivially
    /// copyable captures (every closure the simulation core schedules).
    void (*relocate)(void* dst, void* src) noexcept;
    /// Null means trivially destructible: nothing to do.
    void (*destroy)(void* p) noexcept;
    bool heap;
  };

  template <typename D>
  static constexpr Ops kInlineOps = {
      [](void* p) { (*std::launder(reinterpret_cast<D*>(p)))(); },
      std::is_trivially_copyable_v<D>
          ? nullptr
          : +[](void* dst, void* src) noexcept {
              D* s = std::launder(reinterpret_cast<D*>(src));
              ::new (dst) D(std::move(*s));
              s->~D();
            },
      std::is_trivially_destructible_v<D>
          ? nullptr
          : +[](void* p) noexcept {
              std::launder(reinterpret_cast<D*>(p))->~D();
            },
      /*heap=*/false,
  };

  // The spilled callable is held by pointer inside buf_; relocation is a
  // plain pointer copy, i.e. the null/memcpy fast path.
  template <typename D>
  static constexpr Ops kHeapOps = {
      [](void* p) { (**std::launder(reinterpret_cast<D**>(p)))(); },
      nullptr,
      [](void* p) noexcept { delete *std::launder(reinterpret_cast<D**>(p)); },
      /*heap=*/true,
  };

  void destroy() noexcept {
    if (ops_) {
      if (ops_->destroy) ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  void move_from(Action& o) noexcept {
    ops_ = o.ops_;
    if (ops_) {
      if (ops_->relocate)
        ops_->relocate(buf_, o.buf_);
      else
        std::memcpy(buf_, o.buf_, kInlineSize);
      o.ops_ = nullptr;
    }
  }

  alignas(kInlineAlign) unsigned char buf_[kInlineSize];
  const Ops* ops_ = nullptr;
};

}  // namespace lmo::sim
