// Cluster configuration: the ground truth the simulator runs on.
//
// Each node carries the four physically distinct contributions the paper's
// extended LMO model separates: a fixed per-message processing delay (C_i),
// a per-byte processing delay (t_i), a NIC line rate, and a propagation
// latency to the switch. Pairwise LMO ground truth derives from these:
//
//   L_ij     = latency_i + switch_latency + latency_j
//   beta_ij  = min(rate_i, rate_j)             (single switch => symmetric)
//
// TcpQuirks configures the TCP-layer irregularities the paper observes on
// switched Ethernet clusters (Section III and V).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "simnet/topology.hpp"
#include "util/bytes.hpp"
#include "util/error.hpp"

namespace lmo::sim {

struct NodeParams {
  std::string label;           ///< e.g. "Dell Poweredge 750 / 3.4 Xeon"
  int type = 0;                ///< node type id (Table I rows)
  double fixed_delay_s = 0.0;  ///< C_i: per-message processing delay [s]
  double per_byte_s = 0.0;     ///< t_i: per-byte processing delay [s/B]
  double link_rate_bps = 0.0;  ///< NIC line rate [bytes/s]
  double latency_s = 0.0;      ///< propagation to the switch [s]
};

[[nodiscard]] bool operator==(const NodeParams& a, const NodeParams& b);

/// A named parameter class shared by many ranks. At 4096 ranks a cluster
/// has a handful of machine models, not 4096 distinct nodes: the profile
/// table plus a per-rank profile index is the compact description config
/// v2 serializes, while `ClusterConfig::nodes` stays the materialized
/// per-rank view every hot path indexes by rank.
struct NodeProfile {
  std::string name;   ///< short key, e.g. "core" or the Table-I model name
  NodeParams params;  ///< parameters every member rank starts from
};

/// TCP-layer irregularities injected by the fabric.
struct TcpQuirks {
  bool enabled = true;

  /// Rendezvous threshold: messages strictly larger switch from eager to
  /// rendezvous protocol. This is the physical origin of the paper's M2
  /// (65 KB for LAM 7.1.3, 125 KB for MPICH 1.2.7).
  Bytes rendezvous_threshold = 64 * 1024;

  /// Escalation band: many-to-one eager messages with size in
  /// (escalation_min, rendezvous_threshold] may suffer non-deterministic
  /// delayed-ACK/retransmit escalations (the paper's M1..M2 band).
  Bytes escalation_min = 4 * 1024;
  /// Per-message escalation probability at the top of the band. TCP incast
  /// hits almost the whole band once message bursts exceed the switch
  /// buffers, so the probability ramps only mildly: from 40% of the peak
  /// just above escalation_min to the full peak at the rendezvous
  /// threshold.
  double escalation_peak_prob = 0.12;
  /// The discrete escalation magnitudes (retransmission timer quanta) and
  /// their relative weights. Paper: escalations reach 0.25 s.
  std::vector<double> escalation_values_s = {0.05, 0.10, 0.20, 0.25};
  std::vector<double> escalation_weights = {0.45, 0.30, 0.15, 0.10};

  /// Fragmentation leap: a pipelined (back-to-back) send pays this extra
  /// delay once per full `frag_threshold` contained in the message — the
  /// repeated leaps of Fig. 4 that "converge to the line with the same
  /// slope".
  Bytes frag_threshold = 64 * 1024;
  double frag_leap_s = 0.0008;

  /// Socket send-buffer: a blocking eager send returns early (buffered) as
  /// long as the NIC backlog is below this many bytes.
  Bytes send_buffer = 128 * 1024;
};

struct ClusterConfig {
  std::vector<NodeParams> nodes;

  /// Optional profile table (empty = legacy per-rank description). When
  /// non-empty, profile_of maps every rank to its profile and `nodes`
  /// holds the materialized parameters — equal to the profile's except
  /// where a per-node override was applied. Serialization writes the
  /// profiles plus only the overriding nodes, keeping a 4096-rank file
  /// KB-sized.
  std::vector<NodeProfile> profiles;
  std::vector<int> profile_of;  ///< rank -> index into profiles

  TcpQuirks quirks;
  double switch_latency_s = 10e-6;  ///< fixed forwarding delay in the switch
  double noise_rel = 0.01;          ///< relative measurement/OS noise
  std::uint64_t seed = 1;

  /// Resource tree above the ranks. Empty = the flat single-switch cluster
  /// (every pair one switch_latency_s hop, contention-free) — v1 semantics.
  /// A non-empty topology routes every pair over its LCA path; the
  /// degenerate Topology::single_switch(n, switch_latency_s) produces
  /// bit-identical event streams to the empty case.
  Topology topology;

  [[nodiscard]] int size() const { return int(nodes.size()); }

  /// Ground-truth L_ij [s]; throws lmo::Error naming (i, j, size) on an
  /// invalid pair.
  [[nodiscard]] double latency(int i, int j) const;

  /// Ground-truth beta_ij [bytes/s]; throws lmo::Error naming (i, j, size)
  /// on an invalid pair.
  [[nodiscard]] double rate(int i, int j) const;

  /// LCA level of the pair in the resource tree; 1 on a flat cluster.
  [[nodiscard]] int lca_level(int i, int j) const;

  [[nodiscard]] bool has_profiles() const { return !profiles.empty(); }

  /// True when `rank`'s materialized parameters differ from its profile's
  /// (a per-node override); always false on legacy configs.
  [[nodiscard]] bool overrides_profile(int rank) const;

  /// Rebuild `nodes` from profiles + profile_of (overrides are applied
  /// afterwards by the caller, e.g. the config loader).
  void materialize_profiles();

  /// Throws lmo::Error naming the offending node/field on inconsistent
  /// configuration (empty cluster, zero rates, negative or non-finite
  /// parameters, mismatched quirks vectors, malformed profile table,
  /// malformed topology).
  void validate() const;
};

/// Ground-truth extended-LMO parameters of a config, for validating that
/// estimators recover what the simulator was built from. Per-node
/// parameters stay O(N) vectors; pair parameters are priced on demand
/// from the held config instead of materializing two N x N matrices —
/// at 4096 ranks the dense pair tables alone would cost 256 MB.
class GroundTruth {
 public:
  std::vector<double> C;  ///< fixed processing delay per node [s]
  std::vector<double> t;  ///< per-byte delay per node [s/B]

  /// Ground-truth L_ij [s]; 0 on the diagonal (matching the dense-matrix
  /// convention this accessor replaced).
  [[nodiscard]] double L(int i, int j) const;
  /// Ground-truth 1/beta_ij [s/B]; 0 on the diagonal.
  [[nodiscard]] double inv_beta(int i, int j) const;

  struct PairTruth {
    double L = 0.0;         ///< pair latency [s]
    double inv_beta = 0.0;  ///< inverse pair rate [s/B]
  };
  /// Both pair parameters in one pricing walk.
  [[nodiscard]] PairTruth pair(int i, int j) const;

 private:
  friend GroundTruth ground_truth(const ClusterConfig& cfg);
  ClusterConfig cfg_;
};

[[nodiscard]] GroundTruth ground_truth(const ClusterConfig& cfg);

/// Ground-truth LMO link parameters aggregated per topology level: the
/// mean L_ij and 1/beta_ij over all pairs whose LCA sits at that level —
/// what a per-level fit should recover. Empty for a flat cluster.
struct LevelGroundTruth {
  double L = 0.0;         ///< mean pair latency [s]
  double inv_beta = 0.0;  ///< mean inverse rate [s/B]
  int pairs = 0;          ///< pairs with their LCA at this level
};

[[nodiscard]] std::vector<LevelGroundTruth> ground_truth_per_level(
    const ClusterConfig& cfg);

/// Ground-truth link parameters aggregated per (profile pair, LCA level)
/// class: the mean L_ij and 1/beta_ij over all pairs whose endpoints
/// carry those profiles and whose LCA sits at that level. On a profiled
/// cluster this is the full pair structure in O(profiles² · depth) rows.
/// Empty when the config has no profile table. Rows are ordered by
/// (level, profile_a, profile_b).
struct ProfileClassGroundTruth {
  int level = 1;          ///< LCA level (1 on a flat cluster)
  int profile_a = 0;      ///< lower profile index of the unordered pair
  int profile_b = 0;      ///< higher profile index
  double L = 0.0;         ///< mean pair latency [s]
  double inv_beta = 0.0;  ///< mean inverse rate [s/B]
  std::int64_t pairs = 0; ///< pairs in the class
};

[[nodiscard]] std::vector<ProfileClassGroundTruth>
ground_truth_per_profile_class(const ClusterConfig& cfg);

/// The 16-node heterogeneous cluster of Table I: seven node types with
/// heterogeneous processing delays (derived from CPU class) on a single
/// switch. Rates are 100 Mbit/s Fast Ethernet across the board except the
/// three newer HP DL140 nodes which have gigabit NICs (beta_ij still clamps
/// to the slower endpoint, as on a real switch).
[[nodiscard]] ClusterConfig make_paper_cluster(std::uint64_t seed = 1);

/// n identical nodes; useful for testing that heterogeneous machinery
/// degenerates to the homogeneous case.
[[nodiscard]] ClusterConfig make_homogeneous_cluster(int n,
                                                     const NodeParams& node,
                                                     std::uint64_t seed = 1);

/// Randomized heterogeneous cluster for property tests. Parameters are
/// drawn from realistic ranges (fixed delays 30..120 us, per-byte delays
/// 40..160 ns/B, 100 Mbit or 1 Gbit NICs).
[[nodiscard]] ClusterConfig make_random_cluster(int n, std::uint64_t seed);

/// How make_multicore_cluster assigns ranks to cores.
enum class Placement {
  kBlock,   ///< rank r on node r / cores (consecutive ranks share a node)
  kCyclic,  ///< rank r on node r % nodes (round-robin — the placement a
            ///< topology-unaware scheduler produces)
};

/// Hierarchical multi-core cluster: `switches` switches x
/// `nodes_per_switch` nodes x `cores_per_node` cores (one rank per core).
/// Intra-node transfers run over a contended memory bus; inter-node
/// transfers are capped by the Fast-Ethernet switch level; inter-switch
/// transfers additionally cross a contended, 2:1-oversubscribed uplink.
/// Per-byte processing dominates every wire (the paper's CPU-bound
/// regime), so the LMO fit formulas apply at every level. TCP quirks are
/// disabled (they model the flat Ethernet path). With `switches` == 1 the
/// uplink level is omitted (a 2-level tree).
[[nodiscard]] ClusterConfig make_multicore_cluster(
    int switches, int nodes_per_switch, int cores_per_node,
    std::uint64_t seed = 1, Placement placement = Placement::kBlock);

}  // namespace lmo::sim
