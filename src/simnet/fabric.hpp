// The switched-network fabric: resource accounting for message transfers.
//
// Resources modelled per node: NIC egress wire and NIC ingress wire (both
// FIFO Timelines). The switch adds fixed forwarding latency but no
// contention between disjoint port pairs — the single-switch property the
// paper's parallel-experiment optimization relies on. CPU processing costs
// are computed here too (they belong to the node, not to a Timeline: rank
// programs are sequential, so program order already serializes them).
//
// With a hierarchical ClusterConfig::topology, a transfer walks the LCA
// path: per-level forwarding latencies and bandwidth caps fold into
// latency/rate via the config, and every *contended* switch on the path
// (memory bus, oversubscribed uplink) additionally serializes the transfer
// on a shared per-group Timeline. A topology with no contended levels —
// including the degenerate single-switch tree — reserves nothing extra and
// produces bit-identical event streams to the flat configuration.
//
// TCP-layer quirks (Section III/V of the paper):
//  * fragmentation leap on pipelined bulk sends,
//  * non-deterministic escalations for many-to-one eager messages in the
//    (M1, M2] band,
//  * eager vs. rendezvous protocol switch at M2.
#pragma once

#include <cstdint>
#include <vector>

#include "simnet/cluster.hpp"
#include "simnet/timeline.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace lmo::sim {

struct WireTiming {
  SimTime egress_start;  ///< first byte leaves the sender NIC
  SimTime egress_end;    ///< last byte has left the sender NIC
  SimTime arrival;       ///< last byte received (incl. escalation delay)
  SimTime escalation;    ///< escalation component of `arrival` (zero if none)
};

class Fabric {
 public:
  /// `cfg` must outlive the fabric. Node noise RNGs seed from cfg.seed.
  explicit Fabric(const ClusterConfig& cfg);

  /// Same, but noise RNGs seed from `seed` instead of cfg.seed — how
  /// session-isolated simulations get decorrelated noise streams from one
  /// shared cluster description.
  Fabric(const ClusterConfig& cfg, std::uint64_t seed);

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  [[nodiscard]] const ClusterConfig& config() const { return *cfg_; }
  [[nodiscard]] int size() const { return cfg_->size(); }

  /// CPU time to prepare and hand one n-byte message to the stack:
  /// C_src + n * t_src, plus the fragmentation leap when the send is
  /// pipelined behind other traffic (`pipelined`), with noise.
  [[nodiscard]] SimTime send_cpu_cost(int src, Bytes n, bool pipelined);

  /// CPU time to process one received n-byte message: C_dst + n * t_dst,
  /// with noise.
  [[nodiscard]] SimTime recv_cpu_cost(int dst, Bytes n);

  /// Reserve egress/ingress for an n-byte transfer ready at `ready`;
  /// applies the escalation quirk. Zero-byte messages still occupy the wire
  /// for one minimal frame.
  WireTiming transfer(int src, int dst, Bytes n, SimTime ready);

  /// True if the protocol switches to rendezvous for this size.
  [[nodiscard]] bool use_rendezvous(Bytes n) const;

  /// One-way network latency L_ij as SimTime.
  [[nodiscard]] SimTime wire_latency(int src, int dst) const;

  /// True if src's egress wire is still draining at `t` (a send issued now
  /// would be pipelined behind earlier traffic).
  [[nodiscard]] bool egress_busy(int src, SimTime t) const;

  /// How long an eager blocking send may return before its transmission
  /// completes: as long as the backlog fits the socket send buffer.
  [[nodiscard]] SimTime send_buffer_time(int src, int dst) const;

  /// In-flight (announced but not yet fully received) message count per
  /// destination; drives the escalation quirk.
  void begin_inflow(int dst);
  void end_inflow(int dst);
  [[nodiscard]] int inflows(int dst) const;

  /// Reset wire timelines and inflow counts between measurement runs.
  /// RNG state is preserved so repeated runs see fresh noise.
  void reset_timelines();

  struct Counters {
    std::uint64_t transfers = 0;
    std::uint64_t escalations = 0;
    std::uint64_t leaps = 0;
    std::uint64_t bytes = 0;  ///< frame bytes on the wire (min-frame padded)
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }

 private:
  [[nodiscard]] SimTime noised(double seconds, Rng& rng);
  [[nodiscard]] double escalation_seconds(int dst, Bytes n);
  /// L_ij / beta_ij priced from the SoA arrays + the topology's per-level
  /// caches; bit-identical to ClusterConfig::latency()/rate().
  [[nodiscard]] double pair_latency(int src, int dst) const;
  [[nodiscard]] double pair_rate(int src, int dst) const;

  const ClusterConfig* cfg_;
  // SoA copies of the per-rank hot scalars, indexed by rank: transfer
  // pricing walks flat contiguous arrays instead of chasing NodeParams
  // structs (strings and all) — the difference that keeps the per-event
  // cost flat at 4096 ranks.
  std::vector<double> fixed_delay_;
  std::vector<double> per_byte_;
  std::vector<double> link_rate_;
  std::vector<double> node_latency_;
  std::vector<Timeline> egress_;
  std::vector<Timeline> ingress_;
  /// shared_[l-1][g]: serialization Timeline of group g at contended level
  /// l. Empty (never touched) for non-contended levels and flat configs.
  std::vector<std::vector<Timeline>> shared_;
  std::vector<Rng> node_rng_;
  std::vector<int> inflows_;
  Counters counters_;
};

}  // namespace lmo::sim
