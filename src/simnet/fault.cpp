#include "simnet/fault.hpp"

#include <cmath>
#include <limits>
#include <string>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace lmo::sim {
namespace {

// Stream salts keeping slot-level and node-level decisions decorrelated
// even when a slot index happens to equal a node rank.
constexpr std::uint64_t kSlotStream = 0x5107f4a7c15e9e37ULL;
constexpr std::uint64_t kNodeStream = 0x0de5107f4a7c15e9ULL;

void check_rate(double rate, const char* name) {
  LMO_CHECK_MSG(rate >= 0.0 && rate <= 1.0,
                std::string("fault ") + name + " must lie in [0, 1], got " +
                    std::to_string(rate));
}

}  // namespace

bool FaultSpec::enabled() const {
  return spike_rate > 0.0 || drop_rate > 0.0 || hang_rate > 0.0 ||
         slow_rate > 0.0;
}

void FaultSpec::validate() const {
  check_rate(spike_rate, "spike_rate");
  check_rate(drop_rate, "drop_rate");
  check_rate(hang_rate, "hang_rate");
  check_rate(slow_rate, "slow_rate");
  LMO_CHECK_MSG(spike_scale_s > 0.0, "fault spike_scale_s must be positive");
  LMO_CHECK_MSG(spike_shape > 0.0, "fault spike_shape must be positive");
  LMO_CHECK_MSG(hang_delay_s > 0.0, "fault hang_delay_s must be positive");
  LMO_CHECK_MSG(slow_factor >= 1.0, "fault slow_factor must be >= 1");
}

bool slow_episode(const FaultSpec& spec, std::uint64_t round, std::uint64_t rep,
                  int node) {
  if (spec.slow_rate <= 0.0) return false;
  Rng rng(derive_seed(derive_seed(spec.seed, round, rep), kNodeStream,
                      static_cast<std::uint64_t>(node)));
  return rng.chance(spec.slow_rate);
}

double slow_scale_for(const FaultSpec& spec, std::uint64_t round,
                      std::uint64_t rep, const std::vector<int>& participants) {
  if (spec.slow_rate <= 0.0) return 1.0;
  for (int node : participants) {
    if (slow_episode(spec, round, rep, node)) return spec.slow_factor;
  }
  return 1.0;
}

FaultOutcome inject_fault(const FaultSpec& spec, std::uint64_t round,
                          std::uint64_t rep, std::uint64_t slot,
                          double measured_s, double slow_scale) {
  FaultOutcome out;
  out.slowed = slow_scale > 1.0;
  out.seconds = measured_s * slow_scale;
  if (!spec.enabled()) return out;
  // One decorrelated stream per (round, rep, slot); every decision draws
  // unconditionally so the outcome of one fault class never perturbs the
  // stream position of the next.
  Rng rng(derive_seed(derive_seed(spec.seed, round, rep), kSlotStream, slot));
  const bool drop = rng.chance(spec.drop_rate);
  const bool hang = rng.chance(spec.hang_rate);
  const bool spike = rng.chance(spec.spike_rate);
  const double u = rng.uniform();
  if (drop) {
    out.dropped = true;
    out.seconds = std::numeric_limits<double>::infinity();
    return out;
  }
  if (hang) {
    out.hung = true;
    out.seconds += spec.hang_delay_s;
    return out;
  }
  if (spike) {
    out.spiked = true;
    // Pareto(scale, shape) via inverse CDF; shape <= 2 keeps the tail heavy
    // enough that untrimmed means are visibly poisoned.
    out.seconds +=
        spec.spike_scale_s * std::pow(1.0 - u, -1.0 / spec.spike_shape);
  }
  return out;
}

const std::vector<std::string>& fault_cli_options() {
  static const std::vector<std::string> kOptions = {
      "fault-spike-rate", "fault-drop-rate",  "fault-hang-rate",
      "fault-slow-rate",  "fault-spike-scale", "fault-hang-delay",
      "fault-slow-factor", "fault-seed"};
  return kOptions;
}

FaultSpec fault_spec_from_cli(const Cli& cli) {
  FaultSpec spec;
  spec.spike_rate = cli.get_double("fault-spike-rate", spec.spike_rate);
  spec.drop_rate = cli.get_double("fault-drop-rate", spec.drop_rate);
  spec.hang_rate = cli.get_double("fault-hang-rate", spec.hang_rate);
  spec.slow_rate = cli.get_double("fault-slow-rate", spec.slow_rate);
  spec.spike_scale_s = cli.get_double("fault-spike-scale", spec.spike_scale_s);
  spec.hang_delay_s = cli.get_double("fault-hang-delay", spec.hang_delay_s);
  spec.slow_factor = cli.get_double("fault-slow-factor", spec.slow_factor);
  spec.seed = static_cast<std::uint64_t>(
      cli.get_int("fault-seed", static_cast<std::int64_t>(spec.seed)));
  spec.validate();
  return spec;
}

}  // namespace lmo::sim
