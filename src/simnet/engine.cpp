#include "simnet/engine.hpp"

#include <algorithm>
#include <utility>

#include "obs/flight_recorder.hpp"
#include "util/error.hpp"

namespace lmo::sim {

// 4-ary layout: children of i are 4i+1 .. 4i+4. Versus a binary heap this
// halves the sift depth (and therefore the node moves) at the cost of up to
// three extra comparisons per level — a good trade for the contiguous
// 24-byte nodes, which the comparisons hit in cache anyway.

void Engine::heap_push(Node n) {
  heap_.push_back(n);
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!before(n, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = n;
}

Engine::Node Engine::heap_pop() {
  const Node out = heap_.front();
  const Node last = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n > 0) {
    // Top-down with early exit: the hole follows the min-child path until
    // the displaced tail element fits. (The bottom-up variant — sift to a
    // leaf unconditionally, then bubble the tail back up — measured ~25%
    // slower here: the early exit triggers often enough in simulation
    // workloads to beat the saved per-level comparison.)
    std::size_t i = 0;
    for (;;) {
      const std::size_t first = 4 * i + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t end = std::min(first + 4, n);
      for (std::size_t c = first + 1; c < end; ++c)
        if (before(heap_[c], heap_[best])) best = c;
      if (!before(heap_[best], last)) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = last;
  }
  return out;
}

void Engine::schedule_at(SimTime t, Action fn) {
  LMO_CHECK_MSG(t >= now_, "cannot schedule into the past");
  if (fn.heap_allocated()) ++actions_spilled_;
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    slab_[slot] = std::move(fn);
  } else {
    slot = std::uint32_t(slab_.size());
    slab_.push_back(std::move(fn));
  }
  LMO_CHECK_MSG(next_seq_ < Node::kMaxSeq && slot <= Node::kMaxSlot,
                "event queue exhausted its packed (seq, slot) space");
  heap_push(Node{t, (next_seq_++ << Node::kSlotBits) | slot});
  if (heap_.size() > max_pending_) max_pending_ = heap_.size();
}

bool Engine::step() {
  if (heap_.empty()) return false;
  const Node n = heap_pop();
  // Move the action out of its slot before executing so both heap and slab
  // can be mutated by the action itself (moved-from slots are empty, so
  // recycling the slot needs no further cleanup).
  const std::uint32_t slot = n.slot();
  Action fn = std::move(slab_[slot]);
  free_slots_.push_back(slot);
  now_ = n.t;
  ++executed_;
  if (flight_)
    flight_->record(std::uint64_t(now_.ns()), obs::FlightEvent::kEngineEvent,
                    0, std::uint32_t(heap_.size()));
  fn();
  return true;
}

SimTime Engine::run() {
  while (step()) {
  }
  return now_;
}

void Engine::reset() {
  LMO_CHECK_MSG(heap_.empty(),
                "Engine::reset() with pending events — run to completion or "
                "discard_pending() first");
  now_ = SimTime::zero();
  next_seq_ = 0;  // order is relative, so restarting the counter is
                  // behavior-identical and keeps the packed seq space per-run
  executed_ = 0;
  max_pending_ = 0;
  // heap_/slab_/free_slots_ capacities are deliberately retained: after the
  // first repetition warms them to the high-water mark, later runs schedule
  // without touching the allocator.
}

void Engine::discard_pending() {
  heap_.clear();
  slab_.clear();  // destroys every pending closure
  free_slots_.clear();
}

}  // namespace lmo::sim
