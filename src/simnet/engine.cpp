#include "simnet/engine.hpp"

#include "util/error.hpp"

namespace lmo::sim {

void Engine::schedule_at(SimTime t, Action fn) {
  LMO_CHECK_MSG(t >= now_, "cannot schedule into the past");
  queue_.push(Event{t, next_seq_++, std::move(fn)});
  if (queue_.size() > max_pending_) max_pending_ = queue_.size();
}

bool Engine::step() {
  if (queue_.empty()) return false;
  // Move the action out before popping so the queue can be mutated by the
  // action itself.
  Event ev = queue_.top();
  queue_.pop();
  now_ = ev.t;
  ++executed_;
  ev.fn();
  return true;
}

SimTime Engine::run() {
  while (step()) {
  }
  return now_;
}

void Engine::reset() {
  LMO_CHECK_MSG(queue_.empty(),
                "Engine::reset() with pending events — run to completion or "
                "discard_pending() first");
  now_ = SimTime::zero();
  executed_ = 0;
  max_pending_ = 0;
}

void Engine::discard_pending() {
  while (!queue_.empty()) queue_.pop();
}

}  // namespace lmo::sim
