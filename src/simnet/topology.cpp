#include "simnet/topology.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace lmo::sim {

namespace {
std::string level_label(int l, const TopologyLevel& spec) {
  std::string s = "topology.levels[" + std::to_string(l - 1) + "]";
  if (!spec.name.empty()) s += " ('" + spec.name + "')";
  return s;
}
}  // namespace

Topology Topology::single_switch(int n, double switch_latency_s) {
  LMO_CHECK_MSG(n >= 1, "single_switch topology needs at least one rank");
  TopologyLevel sw;
  sw.name = "switch";
  sw.forward_latency_s = switch_latency_s;
  Topology t;
  t.levels_.push_back(std::move(sw));
  t.group_of_.emplace_back(std::size_t(n), 0);
  t.validate(n);
  return t;
}

Topology Topology::balanced(const std::vector<int>& fanout,
                            std::vector<TopologyLevel> levels) {
  LMO_CHECK_MSG(!fanout.empty(), "balanced topology needs at least one level");
  LMO_CHECK_MSG(fanout.size() == levels.size(),
                "balanced topology: fanout has " +
                    std::to_string(fanout.size()) + " entries but levels has " +
                    std::to_string(levels.size()));
  long long n = 1;
  for (std::size_t l = 0; l < fanout.size(); ++l) {
    LMO_CHECK_MSG(fanout[l] >= 1, "balanced topology: fanout[" +
                                      std::to_string(l) + "] = " +
                                      std::to_string(fanout[l]) +
                                      " must be >= 1");
    n *= fanout[l];
    LMO_CHECK_MSG(n <= 1 << 24, "balanced topology: too many ranks");
  }
  Topology t;
  t.levels_ = std::move(levels);
  long long block = 1;
  for (std::size_t l = 0; l < fanout.size(); ++l) {
    block *= fanout[l];
    std::vector<int> groups(std::size_t(n), 0);
    for (long long r = 0; r < n; ++r)
      groups[std::size_t(r)] = int(r / block);
    t.group_of_.push_back(std::move(groups));
  }
  t.validate(int(n));
  return t;
}

Topology Topology::custom(std::vector<TopologyLevel> levels,
                          std::vector<std::vector<int>> group_of) {
  LMO_CHECK_MSG(levels.size() == group_of.size(),
                "custom topology: " + std::to_string(levels.size()) +
                    " levels but " + std::to_string(group_of.size()) +
                    " placement arrays");
  Topology t;
  t.levels_ = std::move(levels);
  t.group_of_ = std::move(group_of);
  t.validate(t.ranks());
  return t;
}

const TopologyLevel& Topology::level(int l) const {
  LMO_CHECK_MSG(l >= 1 && l <= depth(),
                "topology level " + std::to_string(l) +
                    " out of range 1.." + std::to_string(depth()));
  return levels_[std::size_t(l - 1)];
}

int Topology::group(int l, int rank) const {
  LMO_CHECK_MSG(l >= 1 && l <= depth(),
                "topology level " + std::to_string(l) +
                    " out of range 1.." + std::to_string(depth()));
  const auto& g = group_of_[std::size_t(l - 1)];
  LMO_CHECK_MSG(rank >= 0 && rank < int(g.size()),
                "rank " + std::to_string(rank) +
                    " outside topology placement of " +
                    std::to_string(g.size()) + " ranks");
  return g[std::size_t(rank)];
}

int Topology::group_count(int l) const {
  LMO_CHECK(l >= 1 && l <= depth());
  const auto& g = group_of_[std::size_t(l - 1)];
  int mx = -1;
  for (const int v : g) mx = std::max(mx, v);
  return mx + 1;
}

int Topology::lca_level(int i, int j) const {
  LMO_CHECK_MSG(!empty(), "lca_level on an empty topology");
  for (int l = 1; l <= depth(); ++l)
    if (group(l, i) == group(l, j)) return l;
  LMO_CHECK_MSG(false, "topology has no common ancestor for ranks " +
                           std::to_string(i) + " and " + std::to_string(j));
  return depth();
}

double Topology::path_forward_latency(int i, int j) const {
  const int k = lca_level(i, j);
  double total = 0.0;
  // One switch per level below the LCA on each side, plus the LCA switch.
  for (int l = 1; l < k; ++l)
    total += 2.0 * levels_[std::size_t(l - 1)].forward_latency_s;
  total += levels_[std::size_t(k - 1)].forward_latency_s;
  return total;
}

double Topology::path_rate_cap(double endpoint_rate, int i, int j) const {
  const int k = lca_level(i, j);
  double rate = endpoint_rate;
  for (int l = 1; l <= k; ++l) {
    const double cap = levels_[std::size_t(l - 1)].bandwidth_bps;
    if (cap > 0.0) rate = std::min(rate, cap);
  }
  return rate;
}

bool Topology::any_contended() const {
  for (const auto& l : levels_)
    if (l.contended) return true;
  return false;
}

bool Topology::paths_conflict(int i1, int j1, int i2, int j2) const {
  bool conflict = false;
  for_each_contended_segment(i1, j1, [&](int l1, int g1) {
    if (conflict) return;
    for_each_contended_segment(i2, j2, [&](int l2, int g2) {
      if (l1 == l2 && g1 == g2) conflict = true;
    });
  });
  return conflict;
}

void Topology::validate(int nranks) const {
  if (empty()) {
    LMO_CHECK_MSG(group_of_.empty(),
                  "topology has placements but no levels");
    return;
  }
  LMO_CHECK_MSG(group_of_.size() == levels_.size(),
                "topology: " + std::to_string(levels_.size()) +
                    " levels but " + std::to_string(group_of_.size()) +
                    " placement arrays");
  for (int l = 1; l <= depth(); ++l) {
    const TopologyLevel& spec = levels_[std::size_t(l - 1)];
    LMO_CHECK_MSG(std::isfinite(spec.forward_latency_s) &&
                      spec.forward_latency_s >= 0.0,
                  level_label(l, spec) + ".forward_latency_s = " +
                      std::to_string(spec.forward_latency_s) +
                      " must be finite and non-negative");
    LMO_CHECK_MSG(std::isfinite(spec.bandwidth_bps) &&
                      spec.bandwidth_bps >= 0.0,
                  level_label(l, spec) + ".bandwidth_bps = " +
                      std::to_string(spec.bandwidth_bps) +
                      " must be finite and non-negative (0 = uncapped)");
    const auto& g = group_of_[std::size_t(l - 1)];
    LMO_CHECK_MSG(int(g.size()) == nranks,
                  level_label(l, spec) + " places " +
                      std::to_string(g.size()) + " ranks, cluster has " +
                      std::to_string(nranks));
    for (int r = 0; r < nranks; ++r)
      LMO_CHECK_MSG(g[std::size_t(r)] >= 0 && g[std::size_t(r)] < nranks,
                    level_label(l, spec) + ": rank " + std::to_string(r) +
                        " has out-of-range group id " +
                        std::to_string(g[std::size_t(r)]));
  }
  // Groups must coarsen monotonically: ranks sharing a group at level l
  // share one at every level above.
  for (int l = 1; l < depth(); ++l) {
    const auto& fine = group_of_[std::size_t(l - 1)];
    const auto& coarse = group_of_[std::size_t(l)];
    std::vector<int> parent(std::size_t(nranks), -1);
    for (int r = 0; r < nranks; ++r) {
      const int fg = fine[std::size_t(r)];
      if (parent[std::size_t(fg)] == -1)
        parent[std::size_t(fg)] = coarse[std::size_t(r)];
      LMO_CHECK_MSG(parent[std::size_t(fg)] == coarse[std::size_t(r)],
                    "topology: group " + std::to_string(fg) + " at level " +
                        std::to_string(l) +
                        " straddles two level-" + std::to_string(l + 1) +
                        " groups (rank " + std::to_string(r) + ")");
    }
  }
  const auto& top = group_of_.back();
  for (int r = 0; r < nranks; ++r)
    LMO_CHECK_MSG(top[std::size_t(r)] == 0,
                  "topology: top level must be a single group 0, rank " +
                      std::to_string(r) + " is in group " +
                      std::to_string(top[std::size_t(r)]));
}

bool operator==(const TopologyLevel& a, const TopologyLevel& b) {
  return a.name == b.name && a.forward_latency_s == b.forward_latency_s &&
         a.bandwidth_bps == b.bandwidth_bps && a.contended == b.contended;
}

bool operator==(const Topology& a, const Topology& b) {
  return a.levels_ == b.levels_ && a.group_of_ == b.group_of_;
}

}  // namespace lmo::sim
