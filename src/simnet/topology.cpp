#include "simnet/topology.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace lmo::sim {

namespace {
std::string level_label(int l, const TopologyLevel& spec) {
  std::string s = "topology.levels[" + std::to_string(l - 1) + "]";
  if (!spec.name.empty()) s += " ('" + spec.name + "')";
  return s;
}
}  // namespace

Topology Topology::single_switch(int n, double switch_latency_s) {
  LMO_CHECK_MSG(n >= 1, "single_switch topology needs at least one rank");
  TopologyLevel sw;
  sw.name = "switch";
  sw.forward_latency_s = switch_latency_s;
  Topology t;
  t.levels_.push_back(std::move(sw));
  t.ranks_ = n;
  t.groups_.assign(std::size_t(n), 0);
  t.fanout_ = {n};
  t.validate(n);
  t.finalize();
  return t;
}

Topology Topology::balanced(const std::vector<int>& fanout,
                            std::vector<TopologyLevel> levels) {
  LMO_CHECK_MSG(!fanout.empty(), "balanced topology needs at least one level");
  LMO_CHECK_MSG(fanout.size() == levels.size(),
                "balanced topology: fanout has " +
                    std::to_string(fanout.size()) + " entries but levels has " +
                    std::to_string(levels.size()));
  long long n = 1;
  for (std::size_t l = 0; l < fanout.size(); ++l) {
    LMO_CHECK_MSG(fanout[l] >= 1, "balanced topology: fanout[" +
                                      std::to_string(l) + "] = " +
                                      std::to_string(fanout[l]) +
                                      " must be >= 1");
    n *= fanout[l];
    LMO_CHECK_MSG(n <= 1 << 24, "balanced topology: too many ranks");
  }
  Topology t;
  t.levels_ = std::move(levels);
  t.ranks_ = int(n);
  t.groups_.resize(fanout.size() * std::size_t(n));
  long long block = 1;
  for (std::size_t l = 0; l < fanout.size(); ++l) {
    block *= fanout[l];
    int* groups = t.groups_.data() + l * std::size_t(n);
    for (long long r = 0; r < n; ++r) groups[r] = int(r / block);
  }
  t.fanout_ = fanout;
  t.validate(int(n));
  t.finalize();
  return t;
}

Topology Topology::custom(std::vector<TopologyLevel> levels,
                          std::vector<std::vector<int>> group_of) {
  LMO_CHECK_MSG(levels.size() == group_of.size(),
                "custom topology: " + std::to_string(levels.size()) +
                    " levels but " + std::to_string(group_of.size()) +
                    " placement arrays");
  Topology t;
  t.levels_ = std::move(levels);
  if (!group_of.empty()) {
    const std::size_t n = group_of.front().size();
    // Ragged placements cannot be flattened; reject them here with the
    // same message validate() uses for a placement/cluster width mismatch.
    for (std::size_t l = 0; l < group_of.size(); ++l)
      LMO_CHECK_MSG(group_of[l].size() == n,
                    level_label(int(l + 1), t.levels_[l]) + " places " +
                        std::to_string(group_of[l].size()) +
                        " ranks, cluster has " + std::to_string(n));
    t.ranks_ = int(n);
    t.groups_.reserve(group_of.size() * n);
    for (const auto& row : group_of)
      t.groups_.insert(t.groups_.end(), row.begin(), row.end());
  }
  t.validate(t.ranks());
  t.finalize();
  return t;
}

const TopologyLevel& Topology::level(int l) const {
  LMO_CHECK_MSG(l >= 1 && l <= depth(),
                "topology level " + std::to_string(l) +
                    " out of range 1.." + std::to_string(depth()));
  return levels_[std::size_t(l - 1)];
}

int Topology::group(int l, int rank) const {
  LMO_CHECK_MSG(l >= 1 && l <= depth(),
                "topology level " + std::to_string(l) +
                    " out of range 1.." + std::to_string(depth()));
  LMO_CHECK_MSG(rank >= 0 && rank < ranks_,
                "rank " + std::to_string(rank) +
                    " outside topology placement of " +
                    std::to_string(ranks_) + " ranks");
  return group_raw(l, rank);
}

int Topology::group_count(int l) const {
  LMO_CHECK(l >= 1 && l <= depth());
  return group_count_[std::size_t(l - 1)];
}

int Topology::lca_level(int i, int j) const {
  LMO_CHECK_MSG(!empty(), "lca_level on an empty topology");
  LMO_CHECK_MSG(i >= 0 && i < ranks_,
                "rank " + std::to_string(i) +
                    " outside topology placement of " +
                    std::to_string(ranks_) + " ranks");
  LMO_CHECK_MSG(j >= 0 && j < ranks_,
                "rank " + std::to_string(j) +
                    " outside topology placement of " +
                    std::to_string(ranks_) + " ranks");
  const int* row = groups_.data();
  for (int l = 1; l <= depth(); ++l, row += ranks_)
    if (row[i] == row[j]) return l;
  LMO_CHECK_MSG(false, "topology has no common ancestor for ranks " +
                           std::to_string(i) + " and " + std::to_string(j));
  return depth();
}

double Topology::path_forward_latency(int i, int j) const {
  return level_latency_[std::size_t(lca_level(i, j) - 1)];
}

double Topology::path_rate_cap(double endpoint_rate, int i, int j) const {
  const double cap = level_rate_cap_[std::size_t(lca_level(i, j) - 1)];
  return cap > 0.0 ? std::min(endpoint_rate, cap) : endpoint_rate;
}

double Topology::level_path_latency(int k) const {
  LMO_CHECK(k >= 1 && k <= depth());
  return level_latency_[std::size_t(k - 1)];
}

double Topology::cumulative_rate_cap(int k) const {
  LMO_CHECK(k >= 1 && k <= depth());
  return level_rate_cap_[std::size_t(k - 1)];
}

bool Topology::any_contended() const {
  for (const auto& l : levels_)
    if (l.contended) return true;
  return false;
}

bool Topology::paths_conflict(int i1, int j1, int i2, int j2) const {
  bool conflict = false;
  for_each_contended_segment(i1, j1, [&](int l1, int g1) {
    if (conflict) return;
    for_each_contended_segment(i2, j2, [&](int l2, int g2) {
      if (l1 == l2 && g1 == g2) conflict = true;
    });
  });
  return conflict;
}

void Topology::finalize() {
  group_count_.assign(levels_.size(), 0);
  level_latency_.assign(levels_.size(), 0.0);
  level_rate_cap_.assign(levels_.size(), 0.0);
  // Per-LCA-level path price. The latency accumulation mirrors
  // path_forward_latency's original left-to-right order term for term, so
  // the cached doubles are bit-identical to the on-demand walk; min over
  // positive caps is exact, so folding it per level is too.
  double below = 0.0;  // sum of 2 * forward_latency for levels < k
  double cap = 0.0;    // min positive bandwidth cap over levels <= k
  for (int l = 1; l <= depth(); ++l) {
    const TopologyLevel& spec = levels_[std::size_t(l - 1)];
    level_latency_[std::size_t(l - 1)] = below + spec.forward_latency_s;
    below += 2.0 * spec.forward_latency_s;
    if (spec.bandwidth_bps > 0.0)
      cap = cap > 0.0 ? std::min(cap, spec.bandwidth_bps)
                      : spec.bandwidth_bps;
    level_rate_cap_[std::size_t(l - 1)] = cap;
    const int* row = groups_.data() + std::size_t(l - 1) * std::size_t(ranks_);
    int mx = -1;
    for (int r = 0; r < ranks_; ++r) mx = std::max(mx, row[r]);
    group_count_[std::size_t(l - 1)] = mx + 1;
  }
}

void Topology::validate(int nranks) const {
  if (empty()) {
    LMO_CHECK_MSG(groups_.empty() && ranks_ == 0,
                  "topology has placements but no levels");
    return;
  }
  LMO_CHECK_MSG(groups_.size() == levels_.size() * std::size_t(ranks_),
                "topology: " + std::to_string(levels_.size()) +
                    " levels but a placement of " +
                    std::to_string(groups_.size()) + " entries");
  for (int l = 1; l <= depth(); ++l) {
    const TopologyLevel& spec = levels_[std::size_t(l - 1)];
    LMO_CHECK_MSG(std::isfinite(spec.forward_latency_s) &&
                      spec.forward_latency_s >= 0.0,
                  level_label(l, spec) + ".forward_latency_s = " +
                      std::to_string(spec.forward_latency_s) +
                      " must be finite and non-negative");
    LMO_CHECK_MSG(std::isfinite(spec.bandwidth_bps) &&
                      spec.bandwidth_bps >= 0.0,
                  level_label(l, spec) + ".bandwidth_bps = " +
                      std::to_string(spec.bandwidth_bps) +
                      " must be finite and non-negative (0 = uncapped)");
    LMO_CHECK_MSG(ranks_ == nranks,
                  level_label(l, spec) + " places " + std::to_string(ranks_) +
                      " ranks, cluster has " + std::to_string(nranks));
    const int* row = groups_.data() + std::size_t(l - 1) * std::size_t(ranks_);
    for (int r = 0; r < nranks; ++r)
      LMO_CHECK_MSG(row[r] >= 0 && row[r] < nranks,
                    level_label(l, spec) + ": rank " + std::to_string(r) +
                        " has out-of-range group id " + std::to_string(row[r]));
  }
  // Groups must coarsen monotonically: ranks sharing a group at level l
  // share one at every level above.
  std::vector<int> parent;
  for (int l = 1; l < depth(); ++l) {
    const int* fine = groups_.data() + std::size_t(l - 1) * std::size_t(ranks_);
    const int* coarse = groups_.data() + std::size_t(l) * std::size_t(ranks_);
    parent.assign(std::size_t(nranks), -1);
    for (int r = 0; r < nranks; ++r) {
      const int fg = fine[r];
      if (parent[std::size_t(fg)] == -1) parent[std::size_t(fg)] = coarse[r];
      LMO_CHECK_MSG(parent[std::size_t(fg)] == coarse[r],
                    "topology: group " + std::to_string(fg) + " at level " +
                        std::to_string(l) +
                        " straddles two level-" + std::to_string(l + 1) +
                        " groups (rank " + std::to_string(r) + ")");
    }
  }
  const int* top =
      groups_.data() + std::size_t(depth() - 1) * std::size_t(ranks_);
  for (int r = 0; r < nranks; ++r)
    LMO_CHECK_MSG(top[r] == 0,
                  "topology: top level must be a single group 0, rank " +
                      std::to_string(r) + " is in group " +
                      std::to_string(top[r]));
}

bool operator==(const TopologyLevel& a, const TopologyLevel& b) {
  return a.name == b.name && a.forward_latency_s == b.forward_latency_s &&
         a.bandwidth_bps == b.bandwidth_bps && a.contended == b.contended;
}

bool operator==(const Topology& a, const Topology& b) {
  // fanout_ is a construction/serialization hint, not structure: a
  // balanced tree equals the custom() tree with the same placement.
  return a.levels_ == b.levels_ && a.ranks_ == b.ranks_ &&
         a.groups_ == b.groups_;
}

}  // namespace lmo::sim
