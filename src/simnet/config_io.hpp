// Serialization of cluster configurations.
//
// The paper's software tool [13] persists what it learns about a cluster;
// we do the same for both the simulated cluster description and (in
// core/params_io) the estimated model parameters. Two formats coexist:
//
//  * v1 — line-oriented "key = value" text with [section] headers:
//    diffable, hand-editable, and what every flat (no-topology) config
//    saves as, byte-compatible with earlier releases.
//  * v2 — JSON ("lmo.cluster/2") adding a `topology` section (levels and
//    per-level group placement). Doubles print with the shortest
//    round-tripping representation, so save/load is bit-exact.
//
// cluster_from_text() sniffs the format ('{' starts v2); a v1 file maps
// onto the empty topology, i.e. the degenerate flat tree.
#pragma once

#include <iosfwd>
#include <string>

#include "obs/json.hpp"
#include "simnet/cluster.hpp"

namespace lmo::sim {

/// Serialize the full configuration in the v1 text format (nodes, quirks,
/// noise, seed). The topology is NOT representable here — use to_json for
/// hierarchical configs.
[[nodiscard]] std::string to_text(const ClusterConfig& cfg);

/// Serialize as a v2 "lmo.cluster/2" JSON document, including the
/// topology section when the config has one. Bit-exact round trip through
/// cluster_from_json.
[[nodiscard]] obs::Json to_json(const ClusterConfig& cfg);

/// Parse a v2 document; throws lmo::Error naming the offending field path
/// (e.g. "topology.levels[1].bandwidth_bps") on malformed, negative or
/// non-finite values. The result is validate()d.
[[nodiscard]] ClusterConfig cluster_from_json(const obs::Json& root);

/// Parse either format: a leading '{' selects v2 JSON, anything else the
/// v1 text format (throwing lmo::Error with a line number on malformed
/// input). The result is validate()d.
[[nodiscard]] ClusterConfig cluster_from_text(const std::string& text);

/// File helpers. save_cluster writes v1 text for flat configs (bytes
/// unchanged from earlier releases) and v2 JSON when a topology is
/// present; load_cluster sniffs the format and prefixes errors with the
/// file path.
void save_cluster(const ClusterConfig& cfg, const std::string& path);
[[nodiscard]] ClusterConfig load_cluster(const std::string& path);

}  // namespace lmo::sim
