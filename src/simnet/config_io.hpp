// Text serialization of cluster configurations.
//
// The paper's software tool [13] persists what it learns about a cluster;
// we do the same for both the simulated cluster description and (in
// core/params_io) the estimated model parameters. The format is a simple
// line-oriented "key = value" file with [section] headers — diffable,
// hand-editable, and stable.
#pragma once

#include <iosfwd>
#include <string>

#include "simnet/cluster.hpp"

namespace lmo::sim {

/// Serialize the full configuration (nodes, quirks, noise, seed).
[[nodiscard]] std::string to_text(const ClusterConfig& cfg);

/// Parse a configuration previously produced by to_text(); throws
/// lmo::Error with a line number on malformed input. The result is
/// validate()d.
[[nodiscard]] ClusterConfig cluster_from_text(const std::string& text);

/// File helpers.
void save_cluster(const ClusterConfig& cfg, const std::string& path);
[[nodiscard]] ClusterConfig load_cluster(const std::string& path);

}  // namespace lmo::sim
