// A serially reusable resource (CPU, NIC egress/ingress wire).
//
// Reservations are FIFO: a request made at `earliest` starts no earlier than
// the previous reservation ends. This models store-and-forward serialization
// at a single port; the switch fabric itself is contention-free between
// disjoint ports (paper Section IV).
#pragma once

#include "util/time.hpp"

namespace lmo::sim {

class Timeline {
 public:
  /// Reserve `duration` starting no earlier than `earliest`; returns the
  /// actual start time.
  SimTime reserve(SimTime earliest, SimTime duration) {
    const SimTime start = lmo::max(earliest, free_);
    free_ = start + duration;
    return start;
  }

  /// When the resource next becomes idle.
  [[nodiscard]] SimTime next_free() const { return free_; }

  /// True if a reservation at `t` would have to queue.
  [[nodiscard]] bool busy_at(SimTime t) const { return free_ > t; }

  void reset() { free_ = SimTime::zero(); }

 private:
  SimTime free_ = SimTime::zero();
};

}  // namespace lmo::sim
