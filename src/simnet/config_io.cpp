#include "simnet/config_io.hpp"

#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace lmo::sim {

namespace {
std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}
}  // namespace

std::string to_text(const ClusterConfig& cfg) {
  std::ostringstream os;
  os.precision(17);
  os << "[cluster]\n";
  os << "switch_latency_s = " << cfg.switch_latency_s << "\n";
  os << "noise_rel = " << cfg.noise_rel << "\n";
  os << "seed = " << cfg.seed << "\n";
  const auto& q = cfg.quirks;
  os << "[quirks]\n";
  os << "enabled = " << (q.enabled ? 1 : 0) << "\n";
  os << "rendezvous_threshold = " << q.rendezvous_threshold << "\n";
  os << "escalation_min = " << q.escalation_min << "\n";
  os << "escalation_peak_prob = " << q.escalation_peak_prob << "\n";
  os << "frag_threshold = " << q.frag_threshold << "\n";
  os << "frag_leap_s = " << q.frag_leap_s << "\n";
  os << "send_buffer = " << q.send_buffer << "\n";
  auto emit_list = [&os](const char* key, const std::vector<double>& v) {
    os << key << " = ";
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (i) os << ", ";
      os << v[i];
    }
    os << "\n";
  };
  emit_list("escalation_values_s", q.escalation_values_s);
  emit_list("escalation_weights", q.escalation_weights);
  for (const auto& n : cfg.nodes) {
    os << "[node]\n";
    os << "label = " << n.label << "\n";
    os << "type = " << n.type << "\n";
    os << "fixed_delay_s = " << n.fixed_delay_s << "\n";
    os << "per_byte_s = " << n.per_byte_s << "\n";
    os << "link_rate_bps = " << n.link_rate_bps << "\n";
    os << "latency_s = " << n.latency_s << "\n";
  }
  return os.str();
}

ClusterConfig cluster_from_text(const std::string& text) {
  ClusterConfig cfg;
  cfg.nodes.clear();
  std::istringstream is(text);
  std::string line, section;
  int lineno = 0;
  NodeParams* node = nullptr;
  while (std::getline(is, line)) {
    ++lineno;
    line = trim(line);
    if (line.empty() || line[0] == '#') continue;
    if (line.front() == '[' && line.back() == ']') {
      section = line.substr(1, line.size() - 2);
      if (section == "node") {
        cfg.nodes.emplace_back();
        node = &cfg.nodes.back();
      }
      continue;
    }
    const auto eq = line.find('=');
    LMO_CHECK_MSG(eq != std::string::npos,
                  "config line " + std::to_string(lineno) + ": missing '='");
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    auto d = [&] { return std::stod(value); };
    auto ll = [&] { return std::stoll(value); };
    try {
      if (section == "cluster") {
        if (key == "switch_latency_s") cfg.switch_latency_s = d();
        else if (key == "noise_rel") cfg.noise_rel = d();
        else if (key == "seed") cfg.seed = std::uint64_t(ll());
        else LMO_CHECK_MSG(false, "unknown cluster key: " + key);
      } else if (section == "quirks") {
        auto& q = cfg.quirks;
        if (key == "enabled") q.enabled = ll() != 0;
        else if (key == "rendezvous_threshold") q.rendezvous_threshold = ll();
        else if (key == "escalation_min") q.escalation_min = ll();
        else if (key == "escalation_peak_prob") q.escalation_peak_prob = d();
        else if (key == "frag_threshold") q.frag_threshold = ll();
        else if (key == "frag_leap_s") q.frag_leap_s = d();
        else if (key == "send_buffer") q.send_buffer = ll();
        else if (key == "escalation_values_s" ||
                 key == "escalation_weights") {
          std::vector<double> row;
          std::istringstream cells(value);
          std::string cell;
          while (std::getline(cells, cell, ','))
            row.push_back(std::stod(trim(cell)));
          (key == "escalation_values_s" ? q.escalation_values_s
                                        : q.escalation_weights) =
              std::move(row);
        } else LMO_CHECK_MSG(false, "unknown quirks key: " + key);
      } else if (section == "node") {
        LMO_CHECK_MSG(node != nullptr, "node key outside [node] section");
        if (key == "label") node->label = value;
        else if (key == "type") node->type = int(ll());
        else if (key == "fixed_delay_s") node->fixed_delay_s = d();
        else if (key == "per_byte_s") node->per_byte_s = d();
        else if (key == "link_rate_bps") node->link_rate_bps = d();
        else if (key == "latency_s") node->latency_s = d();
        else LMO_CHECK_MSG(false, "unknown node key: " + key);
      } else {
        LMO_CHECK_MSG(false, "unknown section: " + section);
      }
    } catch (const std::invalid_argument&) {
      throw Error("config line " + std::to_string(lineno) +
                  ": bad number '" + value + "'");
    }
  }
  cfg.validate();
  return cfg;
}

void save_cluster(const ClusterConfig& cfg, const std::string& path) {
  std::ofstream os(path);
  LMO_CHECK_MSG(os.good(), "cannot open " + path + " for writing");
  os << to_text(cfg);
  LMO_CHECK_MSG(os.good(), "write failed: " + path);
}

ClusterConfig load_cluster(const std::string& path) {
  std::ifstream is(path);
  LMO_CHECK_MSG(is.good(), "cannot open " + path);
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return cluster_from_text(buffer.str());
}

}  // namespace lmo::sim
