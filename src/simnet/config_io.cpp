#include "simnet/config_io.hpp"

#include <cmath>
#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace lmo::sim {

namespace {
using obs::Json;

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

// --- v2 JSON field access, erroring with the full field path ------------

std::string path_join(const std::string& parent, const std::string& key) {
  return parent.empty() ? key : parent + "." + key;
}

const Json& req(const Json& o, const std::string& parent, const char* key) {
  if (!o.is_object())
    throw Error("cluster config: " +
                (parent.empty() ? std::string("document root") : parent) +
                " must be a JSON object");
  const Json* j = o.find(key);
  if (!j)
    throw Error("cluster config: missing field '" + path_join(parent, key) +
                "'");
  return *j;
}

double num_field(const Json& o, const std::string& parent, const char* key) {
  const Json& j = req(o, parent, key);
  if (!j.is_number())
    throw Error("cluster config: field '" + path_join(parent, key) +
                "' must be a number");
  const double v = j.as_double();
  if (!std::isfinite(v))
    throw Error("cluster config: field '" + path_join(parent, key) + "' = " +
                std::to_string(v) + " is not finite");
  return v;
}

std::int64_t int_field(const Json& o, const std::string& parent,
                       const char* key) {
  const Json& j = req(o, parent, key);
  if (!j.is_number())
    throw Error("cluster config: field '" + path_join(parent, key) +
                "' must be an integer");
  return j.as_int();
}

bool bool_field(const Json& o, const std::string& parent, const char* key) {
  const Json& j = req(o, parent, key);
  if (!j.is_bool())
    throw Error("cluster config: field '" + path_join(parent, key) +
                "' must be a boolean");
  return j.as_bool();
}

std::string str_field(const Json& o, const std::string& parent,
                      const char* key) {
  const Json& j = req(o, parent, key);
  if (!j.is_string())
    throw Error("cluster config: field '" + path_join(parent, key) +
                "' must be a string");
  return j.as_string();
}

const Json& array_field(const Json& o, const std::string& parent,
                        const char* key) {
  const Json& j = req(o, parent, key);
  if (!j.is_array())
    throw Error("cluster config: field '" + path_join(parent, key) +
                "' must be an array");
  return j;
}

std::vector<double> num_list(const Json& o, const std::string& parent,
                             const char* key) {
  const Json& arr = array_field(o, parent, key);
  std::vector<double> out;
  out.reserve(arr.size());
  for (std::size_t i = 0; i < arr.size(); ++i) {
    const std::string at =
        path_join(parent, key) + "[" + std::to_string(i) + "]";
    if (!arr[i].is_number())
      throw Error("cluster config: field '" + at + "' must be a number");
    const double v = arr[i].as_double();
    if (!std::isfinite(v))
      throw Error("cluster config: field '" + at + "' = " +
                  std::to_string(v) + " is not finite");
    out.push_back(v);
  }
  return out;
}

// The six NodeParams fields, shared by the "nodes", "profiles" and
// "overrides" sections.

void node_params_to_json(Json& jn, const NodeParams& n) {
  jn["label"] = n.label;
  jn["type"] = n.type;
  jn["fixed_delay_s"] = n.fixed_delay_s;
  jn["per_byte_s"] = n.per_byte_s;
  jn["link_rate_bps"] = n.link_rate_bps;
  jn["latency_s"] = n.latency_s;
}

NodeParams node_params_from_json(const Json& jn, const std::string& at) {
  NodeParams n;
  n.label = str_field(jn, at, "label");
  n.type = int(int_field(jn, at, "type"));
  n.fixed_delay_s = num_field(jn, at, "fixed_delay_s");
  n.per_byte_s = num_field(jn, at, "per_byte_s");
  n.link_rate_bps = num_field(jn, at, "link_rate_bps");
  n.latency_s = num_field(jn, at, "latency_s");
  return n;
}
}  // namespace

std::string to_text(const ClusterConfig& cfg) {
  std::ostringstream os;
  os.precision(17);
  os << "[cluster]\n";
  os << "switch_latency_s = " << cfg.switch_latency_s << "\n";
  os << "noise_rel = " << cfg.noise_rel << "\n";
  os << "seed = " << cfg.seed << "\n";
  const auto& q = cfg.quirks;
  os << "[quirks]\n";
  os << "enabled = " << (q.enabled ? 1 : 0) << "\n";
  os << "rendezvous_threshold = " << q.rendezvous_threshold << "\n";
  os << "escalation_min = " << q.escalation_min << "\n";
  os << "escalation_peak_prob = " << q.escalation_peak_prob << "\n";
  os << "frag_threshold = " << q.frag_threshold << "\n";
  os << "frag_leap_s = " << q.frag_leap_s << "\n";
  os << "send_buffer = " << q.send_buffer << "\n";
  auto emit_list = [&os](const char* key, const std::vector<double>& v) {
    os << key << " = ";
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (i) os << ", ";
      os << v[i];
    }
    os << "\n";
  };
  emit_list("escalation_values_s", q.escalation_values_s);
  emit_list("escalation_weights", q.escalation_weights);
  for (const auto& n : cfg.nodes) {
    os << "[node]\n";
    os << "label = " << n.label << "\n";
    os << "type = " << n.type << "\n";
    os << "fixed_delay_s = " << n.fixed_delay_s << "\n";
    os << "per_byte_s = " << n.per_byte_s << "\n";
    os << "link_rate_bps = " << n.link_rate_bps << "\n";
    os << "latency_s = " << n.latency_s << "\n";
  }
  return os.str();
}

Json to_json(const ClusterConfig& cfg) {
  Json root = Json::object();
  root["schema"] = "lmo.cluster/2";

  Json cluster = Json::object();
  cluster["switch_latency_s"] = cfg.switch_latency_s;
  cluster["noise_rel"] = cfg.noise_rel;
  cluster["seed"] = cfg.seed;
  root["cluster"] = std::move(cluster);

  const TcpQuirks& q = cfg.quirks;
  Json quirks = Json::object();
  quirks["enabled"] = q.enabled;
  quirks["rendezvous_threshold"] = q.rendezvous_threshold;
  quirks["escalation_min"] = q.escalation_min;
  quirks["escalation_peak_prob"] = q.escalation_peak_prob;
  Json values = Json::array();
  for (double v : q.escalation_values_s) values.push_back(v);
  quirks["escalation_values_s"] = std::move(values);
  Json weights = Json::array();
  for (double v : q.escalation_weights) weights.push_back(v);
  quirks["escalation_weights"] = std::move(weights);
  quirks["frag_threshold"] = q.frag_threshold;
  quirks["frag_leap_s"] = q.frag_leap_s;
  quirks["send_buffer"] = q.send_buffer;
  root["quirks"] = std::move(quirks);

  if (cfg.has_profiles()) {
    // Compact node description: the profile table, a run-length-encoded
    // rank -> profile index, and only the nodes that override their
    // profile. A 4096-rank single-profile cluster serializes its whole
    // parameter set in one profile row + one [index, count] pair.
    Json profiles = Json::array();
    for (const NodeProfile& p : cfg.profiles) {
      Json jp = Json::object();
      jp["name"] = p.name;
      node_params_to_json(jp, p.params);
      profiles.push_back(std::move(jp));
    }
    root["profiles"] = std::move(profiles);
    Json runs = Json::array();
    for (std::size_t r = 0; r < cfg.profile_of.size();) {
      std::size_t end = r + 1;
      while (end < cfg.profile_of.size() &&
             cfg.profile_of[end] == cfg.profile_of[r])
        ++end;
      Json run = Json::array();
      run.push_back(cfg.profile_of[r]);
      run.push_back(std::int64_t(end - r));
      runs.push_back(std::move(run));
      r = end;
    }
    root["profile_of"] = std::move(runs);
    Json overrides = Json::array();
    for (int r = 0; r < cfg.size(); ++r) {
      if (!cfg.overrides_profile(r)) continue;
      Json jn = Json::object();
      jn["rank"] = r;
      node_params_to_json(jn, cfg.nodes[std::size_t(r)]);
      overrides.push_back(std::move(jn));
    }
    if (overrides.size() > 0) root["overrides"] = std::move(overrides);
  } else {
    Json nodes = Json::array();
    for (const NodeParams& n : cfg.nodes) {
      Json jn = Json::object();
      node_params_to_json(jn, n);
      nodes.push_back(std::move(jn));
    }
    root["nodes"] = std::move(nodes);
  }

  if (!cfg.topology.empty()) {
    const Topology& t = cfg.topology;
    Json topo = Json::object();
    Json levels = Json::array();
    for (int l = 1; l <= t.depth(); ++l) {
      const TopologyLevel& lv = t.level(l);
      Json jl = Json::object();
      jl["name"] = lv.name;
      jl["forward_latency_s"] = lv.forward_latency_s;
      jl["bandwidth_bps"] = lv.bandwidth_bps;
      jl["contended"] = lv.contended;
      levels.push_back(std::move(jl));
    }
    topo["levels"] = std::move(levels);
    if (!t.balanced_fanout().empty()) {
      // A balanced tree is fully described by its fanout — depth() ints
      // instead of depth() * N group ids.
      Json fanout = Json::array();
      for (const int f : t.balanced_fanout()) fanout.push_back(f);
      topo["fanout"] = std::move(fanout);
    } else {
      Json groups = Json::array();
      for (int l = 1; l <= t.depth(); ++l) {
        Json row = Json::array();
        for (int r = 0; r < t.ranks(); ++r) row.push_back(t.group(l, r));
        groups.push_back(std::move(row));
      }
      topo["groups"] = std::move(groups);
    }
    root["topology"] = std::move(topo);
  }
  return root;
}

ClusterConfig cluster_from_json(const Json& root) {
  const std::string schema = str_field(root, "", "schema");
  if (schema != "lmo.cluster/2")
    throw Error("cluster config: schema = '" + schema +
                "', expected 'lmo.cluster/2'");

  ClusterConfig cfg;
  cfg.nodes.clear();
  const Json& cl = req(root, "", "cluster");
  cfg.switch_latency_s = num_field(cl, "cluster", "switch_latency_s");
  cfg.noise_rel = num_field(cl, "cluster", "noise_rel");
  cfg.seed = std::uint64_t(int_field(cl, "cluster", "seed"));

  const Json& qj = req(root, "", "quirks");
  TcpQuirks& q = cfg.quirks;
  q.enabled = bool_field(qj, "quirks", "enabled");
  q.rendezvous_threshold = int_field(qj, "quirks", "rendezvous_threshold");
  q.escalation_min = int_field(qj, "quirks", "escalation_min");
  q.escalation_peak_prob = num_field(qj, "quirks", "escalation_peak_prob");
  q.escalation_values_s = num_list(qj, "quirks", "escalation_values_s");
  q.escalation_weights = num_list(qj, "quirks", "escalation_weights");
  q.frag_threshold = int_field(qj, "quirks", "frag_threshold");
  q.frag_leap_s = num_field(qj, "quirks", "frag_leap_s");
  q.send_buffer = int_field(qj, "quirks", "send_buffer");

  if (root.find("profiles")) {
    const Json& profiles = array_field(root, "", "profiles");
    for (std::size_t k = 0; k < profiles.size(); ++k) {
      const std::string at = "profiles[" + std::to_string(k) + "]";
      NodeProfile p;
      p.name = str_field(profiles[k], at, "name");
      p.params = node_params_from_json(profiles[k], at);
      cfg.profiles.push_back(std::move(p));
    }
    const Json& runs = array_field(root, "", "profile_of");
    for (std::size_t k = 0; k < runs.size(); ++k) {
      const std::string at = "profile_of[" + std::to_string(k) + "]";
      if (!runs[k].is_array() || runs[k].size() != 2 ||
          !runs[k][0].is_number() || !runs[k][1].is_number())
        throw Error("cluster config: field '" + at +
                    "' must be an [index, count] pair");
      const int idx = int(runs[k][0].as_int());
      const std::int64_t count = runs[k][1].as_int();
      if (count < 1)
        throw Error("cluster config: field '" + at + "' has count " +
                    std::to_string(count) + ", must be >= 1");
      cfg.profile_of.insert(cfg.profile_of.end(), std::size_t(count), idx);
    }
    cfg.materialize_profiles();
    if (const Json* overrides = root.find("overrides")) {
      for (std::size_t k = 0; k < overrides->size(); ++k) {
        const std::string at = "overrides[" + std::to_string(k) + "]";
        const int rank = int(int_field((*overrides)[k], at, "rank"));
        if (rank < 0 || rank >= cfg.size())
          throw Error("cluster config: field '" + at + ".rank' = " +
                      std::to_string(rank) + " out of range for " +
                      std::to_string(cfg.size()) + " ranks");
        cfg.nodes[std::size_t(rank)] =
            node_params_from_json((*overrides)[k], at);
      }
    }
  } else {
    const Json& nodes = array_field(root, "", "nodes");
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const std::string at = "nodes[" + std::to_string(i) + "]";
      cfg.nodes.push_back(node_params_from_json(nodes[i], at));
    }
  }

  if (const Json* topo = root.find("topology")) {
    const Json& levels = array_field(*topo, "topology", "levels");
    std::vector<TopologyLevel> specs;
    for (std::size_t l = 0; l < levels.size(); ++l) {
      const std::string at = "topology.levels[" + std::to_string(l) + "]";
      TopologyLevel lv;
      lv.name = str_field(levels[l], at, "name");
      lv.forward_latency_s = num_field(levels[l], at, "forward_latency_s");
      lv.bandwidth_bps = num_field(levels[l], at, "bandwidth_bps");
      lv.contended = bool_field(levels[l], at, "contended");
      specs.push_back(std::move(lv));
    }
    if (topo->find("fanout")) {
      const Json& fanout = array_field(*topo, "topology", "fanout");
      std::vector<int> counts;
      for (std::size_t l = 0; l < fanout.size(); ++l) {
        if (!fanout[l].is_number())
          throw Error("cluster config: field 'topology.fanout[" +
                      std::to_string(l) + "]' must be an integer");
        counts.push_back(int(fanout[l].as_int()));
      }
      if (counts.size() != specs.size())
        throw Error("cluster config: topology.fanout has " +
                    std::to_string(counts.size()) +
                    " entries but topology.levels has " +
                    std::to_string(specs.size()));
      // Rebuilding through balanced() reproduces the exact placement (and
      // the fanout hint), so a fanout-form config round-trips bit-exactly.
      cfg.topology = Topology::balanced(counts, std::move(specs));
      cfg.validate();
      return cfg;
    }
    const Json& groups = array_field(*topo, "topology", "groups");
    if (groups.size() != specs.size())
      throw Error("cluster config: topology.groups has " +
                  std::to_string(groups.size()) +
                  " placement arrays but topology.levels has " +
                  std::to_string(specs.size()));
    std::vector<std::vector<int>> group_of;
    for (std::size_t l = 0; l < groups.size(); ++l) {
      const std::string at = "topology.groups[" + std::to_string(l) + "]";
      if (!groups[l].is_array())
        throw Error("cluster config: field '" + at + "' must be an array");
      std::vector<int> row;
      row.reserve(groups[l].size());
      for (std::size_t r = 0; r < groups[l].size(); ++r) {
        if (!groups[l][r].is_number())
          throw Error("cluster config: field '" + at + "[" +
                      std::to_string(r) + "]' must be an integer");
        row.push_back(int(groups[l][r].as_int()));
      }
      group_of.push_back(std::move(row));
    }
    cfg.topology = Topology::custom(std::move(specs), std::move(group_of));
  }

  cfg.validate();
  return cfg;
}

ClusterConfig cluster_from_text(const std::string& text) {
  const auto first = text.find_first_not_of(" \t\r\n");
  if (first != std::string::npos && text[first] == '{')
    return cluster_from_json(Json::parse(text));
  ClusterConfig cfg;
  cfg.nodes.clear();
  std::istringstream is(text);
  std::string line, section;
  int lineno = 0;
  NodeParams* node = nullptr;
  while (std::getline(is, line)) {
    ++lineno;
    line = trim(line);
    if (line.empty() || line[0] == '#') continue;
    if (line.front() == '[' && line.back() == ']') {
      section = line.substr(1, line.size() - 2);
      if (section == "node") {
        cfg.nodes.emplace_back();
        node = &cfg.nodes.back();
      }
      continue;
    }
    const auto eq = line.find('=');
    LMO_CHECK_MSG(eq != std::string::npos,
                  "config line " + std::to_string(lineno) + ": missing '='");
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    auto d = [&] { return std::stod(value); };
    auto ll = [&] { return std::stoll(value); };
    try {
      if (section == "cluster") {
        if (key == "switch_latency_s") cfg.switch_latency_s = d();
        else if (key == "noise_rel") cfg.noise_rel = d();
        else if (key == "seed") cfg.seed = std::uint64_t(ll());
        else LMO_CHECK_MSG(false, "unknown cluster key: " + key);
      } else if (section == "quirks") {
        auto& q = cfg.quirks;
        if (key == "enabled") q.enabled = ll() != 0;
        else if (key == "rendezvous_threshold") q.rendezvous_threshold = ll();
        else if (key == "escalation_min") q.escalation_min = ll();
        else if (key == "escalation_peak_prob") q.escalation_peak_prob = d();
        else if (key == "frag_threshold") q.frag_threshold = ll();
        else if (key == "frag_leap_s") q.frag_leap_s = d();
        else if (key == "send_buffer") q.send_buffer = ll();
        else if (key == "escalation_values_s" ||
                 key == "escalation_weights") {
          std::vector<double> row;
          std::istringstream cells(value);
          std::string cell;
          while (std::getline(cells, cell, ','))
            row.push_back(std::stod(trim(cell)));
          (key == "escalation_values_s" ? q.escalation_values_s
                                        : q.escalation_weights) =
              std::move(row);
        } else LMO_CHECK_MSG(false, "unknown quirks key: " + key);
      } else if (section == "node") {
        LMO_CHECK_MSG(node != nullptr, "node key outside [node] section");
        if (key == "label") node->label = value;
        else if (key == "type") node->type = int(ll());
        else if (key == "fixed_delay_s") node->fixed_delay_s = d();
        else if (key == "per_byte_s") node->per_byte_s = d();
        else if (key == "link_rate_bps") node->link_rate_bps = d();
        else if (key == "latency_s") node->latency_s = d();
        else LMO_CHECK_MSG(false, "unknown node key: " + key);
      } else {
        LMO_CHECK_MSG(false, "unknown section: " + section);
      }
    } catch (const std::invalid_argument&) {
      throw Error("config line " + std::to_string(lineno) +
                  ": bad number '" + value + "'");
    }
  }
  cfg.validate();
  return cfg;
}

void save_cluster(const ClusterConfig& cfg, const std::string& path) {
  std::ofstream os(path);
  LMO_CHECK_MSG(os.good(), "cannot open " + path + " for writing");
  if (cfg.topology.empty())
    os << to_text(cfg);
  else
    os << to_json(cfg).dump(2) << "\n";
  LMO_CHECK_MSG(os.good(), "write failed: " + path);
}

ClusterConfig load_cluster(const std::string& path) {
  std::ifstream is(path);
  LMO_CHECK_MSG(is.good(), "cannot open " + path);
  std::ostringstream buffer;
  buffer << is.rdbuf();
  try {
    return cluster_from_text(buffer.str());
  } catch (const Error& e) {
    throw Error(path + ": " + e.what());
  }
}

}  // namespace lmo::sim
