// Deterministic fault injection for the measurement pipeline.
//
// Real switched-Ethernet campaigns (Section IV of the paper, CommBench,
// bbThemis) are not Gaussian: they contain heavy-tailed latency spikes,
// experiments whose result never arrives, experiments that "hang" and
// complete only after a huge delay, and whole-node slowdown episodes
// (cron jobs, page cache pressure). A FaultSpec describes those failure
// shapes; the estimation layer injects them into measured experiment
// durations and must recover (see estimate::SimExperimenter).
//
// Determinism contract: every fault decision is a pure function of
// (spec.seed, round, repetition, slot | node) through SplitMix64 chaining —
// exactly like the per-session noise seeding — so serial and --jobs N runs
// inject identical faults and produce bit-identical estimates. With every
// rate at zero the injector is inert and the measurement pipeline is
// bit-identical to a build without it.
#pragma once

#include <cstdint>
#include <vector>

#include "util/cli.hpp"

namespace lmo::sim {

struct FaultSpec {
  /// Per-(round, rep, slot) probability of a heavy-tailed latency spike
  /// added to the measured duration.
  double spike_rate = 0.0;
  /// Pareto scale [s] and shape of the spike magnitude. Shape <= 2 is
  /// genuinely heavy-tailed: occasional spikes dwarf the mean.
  double spike_scale_s = 0.02;
  double spike_shape = 1.5;

  /// Per-(round, rep, slot) probability that the result never arrives.
  double drop_rate = 0.0;

  /// Per-(round, rep, slot) probability that the result arrives only after
  /// `hang_delay_s` — far beyond any sane per-experiment timeout.
  double hang_rate = 0.0;
  double hang_delay_s = 30.0;

  /// Per-(round, rep, node) probability of a slowdown episode: every
  /// experiment touching the node during that repetition runs
  /// `slow_factor` times slower.
  double slow_rate = 0.0;
  double slow_factor = 4.0;

  /// Seed of the fault stream, decorrelated from the cluster noise seed.
  std::uint64_t seed = 1;

  /// True if any fault can ever fire. When false the injector must be a
  /// strict no-op (the bit-identical baseline).
  [[nodiscard]] bool enabled() const;

  /// Throws lmo::Error on nonsensical settings: rates outside [0, 1],
  /// non-positive magnitudes/factors.
  void validate() const;
};

/// What the injector did to one measured experiment duration.
struct FaultOutcome {
  double seconds = 0.0;  ///< transformed duration (+inf when dropped)
  bool spiked = false;
  bool dropped = false;
  bool hung = false;
  bool slowed = false;
};

/// Pure per-(round, rep, node) slowdown-episode decision.
[[nodiscard]] bool slow_episode(const FaultSpec& spec, std::uint64_t round,
                                std::uint64_t rep, int node);

/// Transform one measured duration. `slow_scale` is the multiplicative
/// slowdown already derived from the slot's participants (1.0 = none);
/// spike/drop/hang decisions draw from (spec.seed, round, rep, slot).
/// Dropped results are +infinity: they never arrive, and only the recovery
/// layer's timeout may classify them.
[[nodiscard]] FaultOutcome inject_fault(const FaultSpec& spec,
                                        std::uint64_t round,
                                        std::uint64_t rep, std::uint64_t slot,
                                        double measured_s, double slow_scale);

/// The multiplicative slowdown for an experiment occupying `participants`
/// during repetition (round, rep): spec.slow_factor if any participant is
/// in an episode, else 1.0.
[[nodiscard]] double slow_scale_for(const FaultSpec& spec, std::uint64_t round,
                                    std::uint64_t rep,
                                    const std::vector<int>& participants);

/// The --fault-* option names (for Cli known-option lists).
[[nodiscard]] const std::vector<std::string>& fault_cli_options();

/// Build a FaultSpec from --fault-spike-rate, --fault-drop-rate,
/// --fault-hang-rate, --fault-slow-rate, --fault-spike-scale,
/// --fault-hang-delay, --fault-slow-factor, --fault-seed. Validates.
[[nodiscard]] FaultSpec fault_spec_from_cli(const Cli& cli);

}  // namespace lmo::sim
