// Discrete-event engine.
//
// Deterministic: events at equal timestamps fire in insertion order, and all
// time is integer nanoseconds, so a simulation is bit-reproducible for a
// given seed regardless of platform.
//
// The event queue is an indexed 4-ary min-heap rather than a
// std::priority_queue<Event>: top() on a priority_queue is const, so popping
// an event would have to *copy* its closure out (the bug this design
// replaces). Here the heap orders small trivially-copyable {time, seq, slot}
// nodes while the Actions sit untouched in a slab with a free list — sifts
// shuffle 24-byte keys, never closures, and pop_min() genuinely moves the
// Action out of its slot. Together with Action's inline capture storage the
// schedule/fire cycle is allocation-free once slab and heap have grown to
// the high-water mark. The pop order is a pure function of the (t, seq)
// total order, so the rewrite is bit-identical to the old queue.
#pragma once

#include <cstdint>
#include <vector>

#include "simnet/action.hpp"
#include "util/time.hpp"

namespace lmo::obs {
class FlightRecorder;
}  // namespace lmo::obs

namespace lmo::sim {

class Engine {
 public:
  using Action = sim::Action;

  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedule `fn` at absolute time `t` (>= now).
  void schedule_at(SimTime t, Action fn);

  /// Schedule `fn` `dt` after now.
  void schedule_after(SimTime dt, Action fn) { schedule_at(now_ + dt, std::move(fn)); }

  /// Pop and execute the earliest event. Returns false if the queue was
  /// empty.
  bool step();

  /// Run until the event queue drains. Returns the final time.
  SimTime run();

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const { return heap_.size(); }
  [[nodiscard]] std::uint64_t executed() const { return executed_; }
  /// Queue high-water mark since the last reset().
  [[nodiscard]] std::size_t max_pending() const { return max_pending_; }
  /// Actions whose captures spilled past Action's inline buffer — the
  /// allocation-free hot path keeps this at zero. Lifetime counter, not
  /// cleared by reset().
  [[nodiscard]] std::uint64_t actions_spilled() const {
    return actions_spilled_;
  }

  /// Reset the clock between measurement repetitions. The queue must
  /// already be drained (run() ran to completion) — silently dropping
  /// pending events could strand suspended coroutines whose only resume
  /// path lives in those events; throws if any are pending. For abnormal
  /// teardown, call discard_pending() first.
  void reset();

  /// Destroy all pending events without executing them. The event actions
  /// are released safely (their closures are destroyed; coroutine handles
  /// they hold are non-owning, the frames stay owned by their Tasks). Only
  /// for abnormal teardown — see reset().
  void discard_pending();

  /// Attach (or detach, with nullptr) a flight recorder. Each executed
  /// event records a kEngineEvent with the post-pop queue depth — one
  /// predicted branch plus a 16-byte ring store, no allocation
  /// (bench_engine_microbench asserts allocs_per_event == 0 with a
  /// recorder attached). The recorder is borrowed; the engine is
  /// single-threaded so no synchronization is needed.
  void set_flight_recorder(obs::FlightRecorder* recorder) {
    flight_ = recorder;
  }
  [[nodiscard]] obs::FlightRecorder* flight_recorder() const {
    return flight_;
  }

 private:
  /// Heap node: ordering key plus the slab slot holding the Action.
  /// seq and slot pack into one word (seq in the high bits, so comparing
  /// the packed word breaks timestamp ties by insertion order — two nodes
  /// never share a seq) to keep the node at 16 bytes: power-of-two
  /// indexing, and a 4-child sibling group spans one cache line.
  struct Node {
    SimTime t;
    std::uint64_t seq_slot;

    static constexpr int kSlotBits = 24;
    static constexpr std::uint64_t kMaxSeq = std::uint64_t(1)
                                             << (64 - kSlotBits);
    static constexpr std::uint32_t kMaxSlot = (std::uint32_t(1) << kSlotBits) -
                                              1;
    [[nodiscard]] std::uint32_t slot() const {
      return std::uint32_t(seq_slot) & kMaxSlot;
    }
  };
  /// Strict total order: earlier time first, insertion order on ties. The
  /// two-step branchy form beats a branchless 128-bit (t, seq) key compare
  /// here: simulation schedules are close to time-ordered, so the t
  /// comparison predicts well.
  static bool before(const Node& a, const Node& b) {
    if (a.t != b.t) return a.t < b.t;
    return a.seq_slot < b.seq_slot;
  }

  void heap_push(Node n);
  Node heap_pop();

  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t actions_spilled_ = 0;
  std::size_t max_pending_ = 0;
  std::vector<Node> heap_;                  ///< 4-ary min-heap of keys
  std::vector<Action> slab_;                ///< action storage, heap-indexed
  std::vector<std::uint32_t> free_slots_;   ///< recycled slab slots
  obs::FlightRecorder* flight_ = nullptr;   ///< borrowed; null = off
};

}  // namespace lmo::sim
