// Discrete-event engine.
//
// Deterministic: events at equal timestamps fire in insertion order, and all
// time is integer nanoseconds, so a simulation is bit-reproducible for a
// given seed regardless of platform.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/time.hpp"

namespace lmo::sim {

class Engine {
 public:
  using Action = std::function<void()>;

  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedule `fn` at absolute time `t` (>= now).
  void schedule_at(SimTime t, Action fn);

  /// Schedule `fn` `dt` after now.
  void schedule_after(SimTime dt, Action fn) { schedule_at(now_ + dt, std::move(fn)); }

  /// Pop and execute the earliest event. Returns false if the queue was
  /// empty.
  bool step();

  /// Run until the event queue drains. Returns the final time.
  SimTime run();

  [[nodiscard]] bool empty() const { return queue_.empty(); }
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t executed() const { return executed_; }
  /// Queue high-water mark since the last reset().
  [[nodiscard]] std::size_t max_pending() const { return max_pending_; }

  /// Reset the clock between measurement repetitions. The queue must
  /// already be drained (run() ran to completion) — silently dropping
  /// pending events could strand suspended coroutines whose only resume
  /// path lives in those events; throws if any are pending. For abnormal
  /// teardown, call discard_pending() first.
  void reset();

  /// Destroy all pending events without executing them. The event actions
  /// are released safely (their closures are destroyed; coroutine handles
  /// they hold are non-owning, the frames stay owned by their Tasks). Only
  /// for abnormal teardown — see reset().
  void discard_pending();

 private:
  struct Event {
    SimTime t;
    std::uint64_t seq;
    Action fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t max_pending_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace lmo::sim
