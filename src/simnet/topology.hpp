// Resource-tree topology: the generalization of "N nodes + one switch".
//
// Real clusters are trees — cores sharing a node, nodes sharing a switch,
// switches sharing an uplink — and intra-node links differ from inter-node
// links by orders of magnitude (Task & Chauhan). A Topology describes the
// tree as a stack of *levels* above the leaves (ranks): level 1 is the
// first aggregation (e.g. the node a core lives in), the top level always
// has a single group so every pair of ranks has a lowest common ancestor.
//
// A message from rank i to rank j climbs to the LCA level k and descends:
// it traverses one switch of each level 1..k-1 on each side plus the one
// LCA switch at level k. Each level contributes
//  * forward_latency_s   — forwarding delay per switch traversed,
//  * bandwidth_bps       — an optional capacity cap (0 = uncapped) on
//                          every transfer that crosses the level,
//  * contended           — when set, each group at this level serializes
//                          the traffic through its switch on a shared
//                          Timeline (a bus / oversubscribed uplink); when
//                          clear, the level is contention-free between
//                          disjoint port pairs like the paper's switch.
//
// The single-switch cluster of the paper is the degenerate one-level tree
// (single_switch()): one contention-free, uncapped level whose forwarding
// latency is the switch latency — it produces bit-identical event streams
// to the flat configuration.
//
// Storage is structure-of-arrays: placements live in one flat level-major
// int array (groups_[(l-1)*ranks + rank]) and the per-LCA-level path
// price (forward-latency sum, cumulative bandwidth cap) is precomputed,
// so the per-transfer pricing walk touches two small contiguous arrays
// instead of chasing a vector<vector> — the difference between O(N²)
// pointer soup and a 4096-rank fabric that fits in cache.
#pragma once

#include <string>
#include <vector>

namespace lmo::sim {

struct TopologyLevel {
  std::string name;               ///< "node", "switch", "uplink", ...
  double forward_latency_s = 0.0; ///< forwarding delay per switch traversed
  double bandwidth_bps = 0.0;     ///< capacity cap [bytes/s]; 0 = uncapped
  bool contended = false;         ///< shared-capacity Timeline per group
};

class Topology {
 public:
  /// Empty topology: the owning ClusterConfig falls back to its flat
  /// single-switch formulas (v1 semantics).
  Topology() = default;

  /// The degenerate one-level tree equivalent to a flat single-switch
  /// cluster of n ranks.
  [[nodiscard]] static Topology single_switch(int n, double switch_latency_s);

  /// Balanced tree. `fanout` counts children per unit, leaf to root:
  /// {cores_per_node, nodes_per_switch, switches} describes
  /// switches*nodes*cores ranks under levels {node, switch, uplink}.
  /// Ranks are placed in block order (rank r's level-l group is
  /// r / prod(fanout[0..l])). fanout.size() must equal levels.size().
  [[nodiscard]] static Topology balanced(const std::vector<int>& fanout,
                                         std::vector<TopologyLevel> levels);

  /// Irregular tree: group_of[l][rank] is rank's group id at level l+1.
  /// The last level must place every rank in group 0, and groups must
  /// coarsen monotonically (same group at level l implies same group at
  /// every level above).
  [[nodiscard]] static Topology custom(
      std::vector<TopologyLevel> levels,
      std::vector<std::vector<int>> group_of);

  [[nodiscard]] bool empty() const { return levels_.empty(); }
  /// Number of levels L (0 when empty).
  [[nodiscard]] int depth() const { return int(levels_.size()); }
  /// Number of ranks placed in the tree.
  [[nodiscard]] int ranks() const { return ranks_; }

  /// Level descriptor; levels are numbered 1..depth(), leaf to root.
  [[nodiscard]] const TopologyLevel& level(int l) const;
  /// Rank's group id at level l (1-based level).
  [[nodiscard]] int group(int l, int rank) const;
  /// Number of groups at level l (1-based level).
  [[nodiscard]] int group_count(int l) const;

  /// Lowest level 1..depth() whose groups contain both i and j. The top
  /// level has a single group, so every distinct pair has an LCA.
  [[nodiscard]] int lca_level(int i, int j) const;

  /// Sum of switch forwarding delays on the i -> j path: one switch per
  /// level below the LCA on each side plus the LCA switch itself.
  [[nodiscard]] double path_forward_latency(int i, int j) const;

  /// `endpoint_rate` capped by the bandwidth of every level the path
  /// crosses (levels 1..lca; bandwidth 0 = uncapped).
  [[nodiscard]] double path_rate_cap(double endpoint_rate, int i,
                                     int j) const;

  /// Precomputed forward-latency sum for a path whose LCA is level k
  /// (path_forward_latency is this evaluated at lca_level(i, j)).
  [[nodiscard]] double level_path_latency(int k) const;

  /// Precomputed min over the positive bandwidth caps of levels 1..k;
  /// 0 = no level on such a path is capped.
  [[nodiscard]] double cumulative_rate_cap(int k) const;

  /// The fanout this tree was built from when it came out of balanced()
  /// or single_switch(); empty for custom() trees. Serialization uses it
  /// to write a balanced 4096-rank placement as a handful of ints
  /// instead of depth() * N group ids.
  [[nodiscard]] const std::vector<int>& balanced_fanout() const {
    return fanout_;
  }

  /// True if any level is marked contended (the fabric only then
  /// materializes shared timelines).
  [[nodiscard]] bool any_contended() const;

  /// True if any two distinct ranks' paths can perturb each other through
  /// a shared contended switch. False for the degenerate single-switch
  /// tree — planning then behaves exactly like the flat configuration.
  [[nodiscard]] bool constrains_concurrency() const {
    return any_contended();
  }

  /// Invoke f(level, group) for every *contended* switch on the i -> j
  /// path, in path order: src side up, the LCA, dst side down. Levels are
  /// 1-based; allocation-free.
  template <class F>
  void for_each_contended_segment(int i, int j, F&& f) const {
    const int k = lca_level(i, j);
    for (int l = 1; l < k; ++l)
      if (levels_[std::size_t(l - 1)].contended) f(l, group_raw(l, i));
    if (levels_[std::size_t(k - 1)].contended) f(k, group_raw(k, i));
    for (int l = k - 1; l >= 1; --l)
      if (levels_[std::size_t(l - 1)].contended) f(l, group_raw(l, j));
  }

  /// True if the i1->j1 and i2->j2 paths share a contended switch — then
  /// concurrent experiments over them would perturb each other even when
  /// the endpoints are disjoint.
  [[nodiscard]] bool paths_conflict(int i1, int j1, int i2, int j2) const;

  /// Throws lmo::Error naming the offending level/rank on inconsistent
  /// structure (wrong placement width, non-monotone coarsening, top level
  /// not a single group, negative/non-finite level parameters).
  void validate(int nranks) const;

  friend bool operator==(const Topology& a, const Topology& b);

 private:
  /// Unchecked flat-array read; callers bounds-check l and rank first.
  [[nodiscard]] int group_raw(int l, int rank) const {
    return groups_[std::size_t(l - 1) * std::size_t(ranks_) +
                   std::size_t(rank)];
  }
  /// Builds the derived caches (group counts, per-LCA-level path prices)
  /// after the structure has been validated.
  void finalize();

  std::vector<TopologyLevel> levels_;  ///< levels_[l-1] = level l
  int ranks_ = 0;                      ///< leaves placed in the tree
  std::vector<int> groups_;            ///< level-major: [(l-1)*ranks_ + r]
  std::vector<int> group_count_;       ///< cache: groups at level l
  std::vector<double> level_latency_;  ///< cache: path latency, LCA = l
  std::vector<double> level_rate_cap_; ///< cache: min positive cap 1..l
  std::vector<int> fanout_;            ///< balanced() shape; else empty
};

bool operator==(const TopologyLevel& a, const TopologyLevel& b);

}  // namespace lmo::sim
