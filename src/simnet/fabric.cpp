#include "simnet/fabric.hpp"

#include <cmath>

namespace lmo::sim {

namespace {
/// A zero-byte MPI message still costs one minimal Ethernet frame.
constexpr Bytes kMinFrame = 64;
}  // namespace

Fabric::Fabric(const ClusterConfig& cfg) : Fabric(cfg, cfg.seed) {}

Fabric::Fabric(const ClusterConfig& cfg, std::uint64_t seed) : cfg_(&cfg) {
  cfg.validate();
  const auto n = std::size_t(cfg.size());
  fixed_delay_.resize(n);
  per_byte_.resize(n);
  link_rate_.resize(n);
  node_latency_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const NodeParams& node = cfg.nodes[i];
    fixed_delay_[i] = node.fixed_delay_s;
    per_byte_[i] = node.per_byte_s;
    link_rate_[i] = node.link_rate_bps;
    node_latency_[i] = node.latency_s;
  }
  egress_.resize(n);
  ingress_.resize(n);
  inflows_.assign(n, 0);
  Rng seeder(seed);
  node_rng_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) node_rng_.push_back(seeder.split());
  const Topology& topo = cfg.topology;
  if (!topo.empty() && topo.any_contended()) {
    shared_.resize(std::size_t(topo.depth()));
    for (int l = 1; l <= topo.depth(); ++l)
      if (topo.level(l).contended)
        shared_[std::size_t(l - 1)].resize(std::size_t(topo.group_count(l)));
  }
}

SimTime Fabric::noised(double seconds, Rng& rng) {
  if (cfg_->noise_rel <= 0) return SimTime::from_seconds_clamped(seconds);
  // One-sided noise: OS jitter and cache effects only ever add time.
  const double jitter = std::fabs(rng.normal()) * cfg_->noise_rel;
  return SimTime::from_seconds_clamped(seconds * (1.0 + jitter));
}

SimTime Fabric::send_cpu_cost(int src, Bytes n, bool pipelined) {
  LMO_CHECK(src >= 0 && src < size());
  LMO_CHECK(n >= 0);
  double cost =
      fixed_delay_[std::size_t(src)] + double(n) * per_byte_[std::size_t(src)];
  const TcpQuirks& q = cfg_->quirks;
  if (q.enabled && pipelined && n >= q.frag_threshold) {
    const auto crossings = n / q.frag_threshold;
    cost += q.frag_leap_s * double(crossings);
    counters_.leaps += std::uint64_t(crossings);
  }
  return noised(cost, node_rng_[std::size_t(src)]);
}

SimTime Fabric::recv_cpu_cost(int dst, Bytes n) {
  LMO_CHECK(dst >= 0 && dst < size());
  LMO_CHECK(n >= 0);
  return noised(fixed_delay_[std::size_t(dst)] +
                    double(n) * per_byte_[std::size_t(dst)],
                node_rng_[std::size_t(dst)]);
}

double Fabric::pair_latency(int src, int dst) const {
  // Same accumulation order as ClusterConfig::latency — the cached
  // per-LCA-level price makes it a flat-array read, not a path walk.
  const Topology& topo = cfg_->topology;
  const double forward =
      topo.empty() ? cfg_->switch_latency_s
                   : topo.level_path_latency(topo.lca_level(src, dst));
  return node_latency_[std::size_t(src)] + forward +
         node_latency_[std::size_t(dst)];
}

double Fabric::pair_rate(int src, int dst) const {
  const double endpoint = std::min(link_rate_[std::size_t(src)],
                                   link_rate_[std::size_t(dst)]);
  const Topology& topo = cfg_->topology;
  if (topo.empty()) return endpoint;
  const double cap = topo.cumulative_rate_cap(topo.lca_level(src, dst));
  return cap > 0.0 ? std::min(endpoint, cap) : endpoint;
}

double Fabric::escalation_seconds(int dst, Bytes n) {
  const TcpQuirks& q = cfg_->quirks;
  if (!q.enabled) return 0.0;
  if (n <= q.escalation_min || n > q.rendezvous_threshold) return 0.0;
  if (inflows_[std::size_t(dst)] < 1) return 0.0;  // needs converging traffic
  const double band =
      double(n - q.escalation_min) /
      double(q.rendezvous_threshold - q.escalation_min);
  const double p = q.escalation_peak_prob * (0.4 + 0.6 * band);
  Rng& rng = node_rng_[std::size_t(dst)];
  if (!rng.chance(p)) return 0.0;
  // Draw one of the discrete retransmission-timeout magnitudes.
  double total_w = 0.0;
  for (double w : q.escalation_weights) total_w += w;
  double pick = rng.uniform() * total_w;
  for (std::size_t i = 0; i < q.escalation_values_s.size(); ++i) {
    pick -= q.escalation_weights[i];
    if (pick <= 0) return q.escalation_values_s[i];
  }
  return q.escalation_values_s.back();
}

WireTiming Fabric::transfer(int src, int dst, Bytes n, SimTime ready) {
  LMO_CHECK(src >= 0 && src < size());
  LMO_CHECK(dst >= 0 && dst < size());
  LMO_CHECK_MSG(src != dst, "self-transfer does not touch the fabric");
  LMO_CHECK(n >= 0);
  ++counters_.transfers;

  const Bytes frame_bytes = n < kMinFrame ? kMinFrame : n;
  counters_.bytes += std::uint64_t(frame_bytes);
  const double rate = pair_rate(src, dst);
  const SimTime wire_time =
      noised(double(frame_bytes) / rate, node_rng_[std::size_t(src)]);
  const SimTime latency = wire_latency(src, dst);

  WireTiming w;
  w.egress_start = egress_[std::size_t(src)].reserve(ready, wire_time);
  w.egress_end = w.egress_start + wire_time;
  // Every contended switch on the LCA path (memory bus, oversubscribed
  // uplink) serializes the transfer on its group's shared Timeline, in
  // path order. Contention-free levels and flat configs skip this loop
  // entirely, so degenerate trees reserve exactly what the flat code did.
  SimTime avail = w.egress_start;
  if (!shared_.empty())
    cfg_->topology.for_each_contended_segment(src, dst, [&](int l, int g) {
      avail = shared_[std::size_t(l - 1)][std::size_t(g)].reserve(avail,
                                                                  wire_time);
    });
  // Cut-through at the switch: the ingress port starts receiving one
  // latency after the first byte left, and is occupied for the same wire
  // time (both ports run at beta_ij = min of the two line rates).
  const SimTime ingress_start =
      ingress_[std::size_t(dst)].reserve(avail + latency, wire_time);
  w.escalation = SimTime::from_seconds_clamped(escalation_seconds(dst, n));
  if (w.escalation > SimTime::zero()) ++counters_.escalations;
  w.arrival = ingress_start + wire_time + w.escalation;
  return w;
}

bool Fabric::use_rendezvous(Bytes n) const {
  const TcpQuirks& q = cfg_->quirks;
  return q.enabled && n > q.rendezvous_threshold;
}

SimTime Fabric::wire_latency(int src, int dst) const {
  LMO_CHECK(src >= 0 && src < size());
  LMO_CHECK(dst >= 0 && dst < size());
  LMO_CHECK_MSG(src != dst, "self-transfer does not touch the fabric");
  return SimTime::from_seconds(pair_latency(src, dst));
}

bool Fabric::egress_busy(int src, SimTime t) const {
  LMO_CHECK(src >= 0 && src < size());
  return egress_[std::size_t(src)].busy_at(t);
}

SimTime Fabric::send_buffer_time(int src, int dst) const {
  LMO_CHECK(src >= 0 && src < size());
  LMO_CHECK(dst >= 0 && dst < size());
  LMO_CHECK_MSG(src != dst, "self-transfer does not touch the fabric");
  return SimTime::from_seconds(double(cfg_->quirks.send_buffer) /
                               pair_rate(src, dst));
}

void Fabric::begin_inflow(int dst) {
  LMO_CHECK(dst >= 0 && dst < size());
  ++inflows_[std::size_t(dst)];
}

void Fabric::end_inflow(int dst) {
  LMO_CHECK(dst >= 0 && dst < size());
  LMO_CHECK(inflows_[std::size_t(dst)] > 0);
  --inflows_[std::size_t(dst)];
}

int Fabric::inflows(int dst) const {
  LMO_CHECK(dst >= 0 && dst < size());
  return inflows_[std::size_t(dst)];
}

void Fabric::reset_timelines() {
  for (auto& t : egress_) t.reset();
  for (auto& t : ingress_) t.reset();
  for (auto& level : shared_)
    for (auto& t : level) t.reset();
  for (auto& c : inflows_) c = 0;
}

}  // namespace lmo::sim
