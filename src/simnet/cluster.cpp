#include "simnet/cluster.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <tuple>

#include "util/rng.hpp"

namespace lmo::sim {

namespace {
constexpr double kFastEthernet = 100e6 / 8.0;  // bytes/s
constexpr double kGigabit = 1000e6 / 8.0;      // bytes/s

[[noreturn]] void bad_pair(const char* what, int i, int j, int size) {
  throw Error(std::string("ClusterConfig::") + what + ": invalid pair (i=" +
              std::to_string(i) + ", j=" + std::to_string(j) +
              ") for a cluster of size " + std::to_string(size) +
              (i == j ? " — a rank does not talk to itself through the fabric"
                      : ""));
}

void check_pair(const char* what, int i, int j, int size) {
  if (i == j || i < 0 || j < 0 || i >= size || j >= size)
    bad_pair(what, i, j, size);
}

void check_finite_nonneg(double v, const std::string& field) {
  if (!(std::isfinite(v) && v >= 0.0))
    throw Error("ClusterConfig: " + field + " = " + std::to_string(v) +
                " must be finite and non-negative");
}
}  // namespace

double ClusterConfig::latency(int i, int j) const {
  check_pair("latency", i, j, size());
  if (topology.empty())
    return nodes[std::size_t(i)].latency_s + switch_latency_s +
           nodes[std::size_t(j)].latency_s;
  return nodes[std::size_t(i)].latency_s +
         topology.path_forward_latency(i, j) +
         nodes[std::size_t(j)].latency_s;
}

double ClusterConfig::rate(int i, int j) const {
  check_pair("rate", i, j, size());
  const double endpoint = std::min(nodes[std::size_t(i)].link_rate_bps,
                                   nodes[std::size_t(j)].link_rate_bps);
  if (topology.empty()) return endpoint;
  return topology.path_rate_cap(endpoint, i, j);
}

int ClusterConfig::lca_level(int i, int j) const {
  check_pair("lca_level", i, j, size());
  return topology.empty() ? 1 : topology.lca_level(i, j);
}

bool operator==(const NodeParams& a, const NodeParams& b) {
  return a.label == b.label && a.type == b.type &&
         a.fixed_delay_s == b.fixed_delay_s && a.per_byte_s == b.per_byte_s &&
         a.link_rate_bps == b.link_rate_bps && a.latency_s == b.latency_s;
}

bool ClusterConfig::overrides_profile(int rank) const {
  if (profiles.empty()) return false;
  LMO_CHECK_MSG(rank >= 0 && rank < size(),
                "overrides_profile: rank " + std::to_string(rank) +
                    " out of range for a cluster of size " +
                    std::to_string(size()));
  return !(nodes[std::size_t(rank)] ==
           profiles[std::size_t(profile_of[std::size_t(rank)])].params);
}

void ClusterConfig::materialize_profiles() {
  nodes.clear();
  nodes.reserve(profile_of.size());
  for (const int p : profile_of) {
    LMO_CHECK_MSG(p >= 0 && p < int(profiles.size()),
                  "profile_of[" + std::to_string(nodes.size()) +
                      "] = " + std::to_string(p) +
                      " out of range for " + std::to_string(profiles.size()) +
                      " profiles");
    nodes.push_back(profiles[std::size_t(p)].params);
  }
}

void ClusterConfig::validate() const {
  if (nodes.empty()) throw Error("ClusterConfig: cluster is empty (no nodes)");
  LMO_CHECK_MSG(size() >= 2, "a cluster needs at least two nodes (got " +
                                 std::to_string(size()) + ")");
  for (int i = 0; i < size(); ++i) {
    const NodeParams& n = nodes[std::size_t(i)];
    const std::string at = "nodes[" + std::to_string(i) + "].";
    check_finite_nonneg(n.fixed_delay_s, at + "fixed_delay_s");
    check_finite_nonneg(n.per_byte_s, at + "per_byte_s");
    check_finite_nonneg(n.latency_s, at + "latency_s");
    if (!(std::isfinite(n.link_rate_bps) && n.link_rate_bps > 0.0))
      throw Error("ClusterConfig: " + at + "link_rate_bps = " +
                  std::to_string(n.link_rate_bps) +
                  " must be finite and positive");
  }
  if (!profiles.empty()) {
    LMO_CHECK_MSG(profile_of.size() == nodes.size(),
                  "ClusterConfig: profile_of has " +
                      std::to_string(profile_of.size()) +
                      " entries, cluster has " + std::to_string(size()) +
                      " nodes");
    for (int r = 0; r < size(); ++r) {
      const int p = profile_of[std::size_t(r)];
      LMO_CHECK_MSG(p >= 0 && p < int(profiles.size()),
                    "ClusterConfig: profile_of[" + std::to_string(r) +
                        "] = " + std::to_string(p) + " out of range for " +
                        std::to_string(profiles.size()) + " profiles");
    }
    for (std::size_t k = 0; k < profiles.size(); ++k) {
      const NodeParams& p = profiles[k].params;
      const std::string at = "profiles[" + std::to_string(k) + "].params.";
      check_finite_nonneg(p.fixed_delay_s, at + "fixed_delay_s");
      check_finite_nonneg(p.per_byte_s, at + "per_byte_s");
      check_finite_nonneg(p.latency_s, at + "latency_s");
      if (!(std::isfinite(p.link_rate_bps) && p.link_rate_bps > 0.0))
        throw Error("ClusterConfig: " + at + "link_rate_bps = " +
                    std::to_string(p.link_rate_bps) +
                    " must be finite and positive");
    }
  } else {
    LMO_CHECK_MSG(profile_of.empty(),
                  "ClusterConfig: profile_of has " +
                      std::to_string(profile_of.size()) +
                      " entries but the profile table is empty");
  }
  check_finite_nonneg(switch_latency_s, "switch_latency_s");
  check_finite_nonneg(noise_rel, "noise_rel");
  // Mismatched quirks vectors corrupt the escalation draw even when the
  // quirks are currently disabled, so check them unconditionally.
  if (quirks.escalation_values_s.size() != quirks.escalation_weights.size())
    throw Error("ClusterConfig: quirks.escalation_values_s has " +
                std::to_string(quirks.escalation_values_s.size()) +
                " entries but quirks.escalation_weights has " +
                std::to_string(quirks.escalation_weights.size()));
  if (quirks.enabled)
    LMO_CHECK_MSG(quirks.escalation_min <= quirks.rendezvous_threshold,
                  "quirks.escalation_min exceeds rendezvous_threshold");
  topology.validate(size());
}

double GroundTruth::L(int i, int j) const {
  if (i == j) return 0.0;
  return cfg_.latency(i, j);
}

double GroundTruth::inv_beta(int i, int j) const {
  if (i == j) return 0.0;
  return 1.0 / cfg_.rate(i, j);
}

GroundTruth::PairTruth GroundTruth::pair(int i, int j) const {
  PairTruth p;
  if (i == j) return p;
  p.L = cfg_.latency(i, j);
  p.inv_beta = 1.0 / cfg_.rate(i, j);
  return p;
}

GroundTruth ground_truth(const ClusterConfig& cfg) {
  const int n = cfg.size();
  GroundTruth gt;
  gt.cfg_ = cfg;
  gt.C.resize(std::size_t(n));
  gt.t.resize(std::size_t(n));
  for (int i = 0; i < n; ++i) {
    gt.C[std::size_t(i)] = cfg.nodes[std::size_t(i)].fixed_delay_s;
    gt.t[std::size_t(i)] = cfg.nodes[std::size_t(i)].per_byte_s;
  }
  return gt;
}

std::vector<LevelGroundTruth> ground_truth_per_level(
    const ClusterConfig& cfg) {
  std::vector<LevelGroundTruth> out;
  if (cfg.topology.empty()) return out;
  out.resize(std::size_t(cfg.topology.depth()));
  const int n = cfg.size();
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      LevelGroundTruth& lv = out[std::size_t(cfg.lca_level(i, j) - 1)];
      lv.L += cfg.latency(i, j);
      lv.inv_beta += 1.0 / cfg.rate(i, j);
      ++lv.pairs;
    }
  }
  for (auto& lv : out) {
    if (lv.pairs == 0) continue;
    lv.L /= lv.pairs;
    lv.inv_beta /= lv.pairs;
  }
  return out;
}

std::vector<ProfileClassGroundTruth> ground_truth_per_profile_class(
    const ClusterConfig& cfg) {
  std::vector<ProfileClassGroundTruth> out;
  if (!cfg.has_profiles()) return out;
  // (level, profile_a, profile_b) -> accumulating row. std::map keeps the
  // output deterministically ordered by class.
  std::map<std::tuple<int, int, int>, ProfileClassGroundTruth> classes;
  const int n = cfg.size();
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      int pa = cfg.profile_of[std::size_t(i)];
      int pb = cfg.profile_of[std::size_t(j)];
      if (pa > pb) std::swap(pa, pb);
      const int level = cfg.lca_level(i, j);
      ProfileClassGroundTruth& row = classes[{level, pa, pb}];
      row.level = level;
      row.profile_a = pa;
      row.profile_b = pb;
      row.L += cfg.latency(i, j);
      row.inv_beta += 1.0 / cfg.rate(i, j);
      ++row.pairs;
    }
  }
  out.reserve(classes.size());
  for (auto& [key, row] : classes) {
    row.L /= double(row.pairs);
    row.inv_beta /= double(row.pairs);
    out.push_back(row);
  }
  return out;
}

ClusterConfig make_multicore_cluster(int switches, int nodes_per_switch,
                                     int cores_per_node, std::uint64_t seed,
                                     Placement placement) {
  LMO_CHECK_MSG(switches >= 1 && nodes_per_switch >= 1 && cores_per_node >= 1,
                "make_multicore_cluster: all shape arguments must be >= 1");
  const int total_nodes = switches * nodes_per_switch;
  const int n = total_nodes * cores_per_node;
  LMO_CHECK_MSG(n >= 2, "make_multicore_cluster: needs at least two ranks");

  ClusterConfig cfg;
  cfg.seed = seed;
  // The TCP quirks model the flat switched-Ethernet path; on the
  // hierarchical shared-memory/Ethernet mix they would blur the per-level
  // parameters this factory is designed to expose.
  cfg.quirks.enabled = false;
  cfg.noise_rel = 0.005;
  cfg.switch_latency_s = 0.0;  // all forwarding lives in the topology levels

  // Per-core endpoint parameters. Like the paper's measured nodes, the
  // per-byte processing delay (170 ns/B — a period TCP/IP stack doing two
  // copies plus a checksum) exceeds even the slowest wire below (160 ns/B
  // on the oversubscribed uplink), so the processor — not the NIC — is the
  // serialized resource. That is the regime the one-to-two recovery
  // formula (eq. 11) assumes: with a wire-bound source, back-to-back sends
  // would serialize on the egress port and the fitted t would absorb wire
  // time. The 25 MB/s core injection rate keeps intra-node transfers the
  // fastest level while staying within a factor the fit can resolve
  // against the processing terms.
  NodeParams core;
  core.fixed_delay_s = 12e-6;  // C_i
  core.per_byte_s = 170e-9;    // t_i
  core.link_rate_bps = 25e6;   // bytes/s
  core.latency_s = 0.5e-6;

  // Levels, leaf to root. The node level (memory bus) is contended but
  // uncapped; the switch level caps at Fast Ethernet and is contention-free
  // between disjoint port pairs; the uplink is both capped and contended.
  TopologyLevel node_lv;
  node_lv.name = "node";
  node_lv.forward_latency_s = 0.3e-6;
  node_lv.contended = true;

  TopologyLevel switch_lv;
  switch_lv.name = "switch";
  switch_lv.forward_latency_s = 10e-6;
  switch_lv.bandwidth_bps = kFastEthernet;

  // The uplink is 2:1 oversubscribed relative to the switch ports — the
  // classic cheap-cluster build — which is what makes hierarchy-aware
  // placement measurably better than flat placement.
  TopologyLevel uplink_lv;
  uplink_lv.name = "uplink";
  uplink_lv.forward_latency_s = 15e-6;
  uplink_lv.bandwidth_bps = kFastEthernet / 2;
  uplink_lv.contended = true;

  std::vector<TopologyLevel> levels{node_lv, switch_lv};
  if (switches > 1) levels.push_back(uplink_lv);

  if (placement == Placement::kBlock) {
    std::vector<int> fanout{cores_per_node, nodes_per_switch};
    if (switches > 1) fanout.push_back(switches);
    cfg.topology = Topology::balanced(fanout, std::move(levels));
  } else {
    // Round-robin: rank r runs on node r % total_nodes — the placement a
    // topology-unaware scheduler produces. Consecutive ranks land on
    // different nodes (and different switches), which is exactly what a
    // hierarchy-aware mapping should undo.
    std::vector<std::vector<int>> group_of;
    std::vector<int> node_of(std::size_t(n), 0);
    for (int r = 0; r < n; ++r) node_of[std::size_t(r)] = r % total_nodes;
    group_of.push_back(node_of);
    if (switches > 1) {
      std::vector<int> switch_of(std::size_t(n), 0);
      for (int r = 0; r < n; ++r)
        switch_of[std::size_t(r)] = node_of[std::size_t(r)] / nodes_per_switch;
      group_of.push_back(std::move(switch_of));
    }
    group_of.emplace_back(std::size_t(n), 0);
    cfg.topology = Topology::custom(std::move(levels), std::move(group_of));
  }

  // Every core is the same machine; the placement lives in the topology,
  // not in per-rank labels. One profile row + a rank->profile index is the
  // whole parameter description — what keeps a 4096-rank config file (and
  // this factory) O(1) in N instead of O(N).
  core.label = "core";
  NodeProfile prof;
  prof.name = "core";
  prof.params = core;
  cfg.profiles.push_back(std::move(prof));
  cfg.profile_of.assign(std::size_t(n), 0);
  cfg.materialize_profiles();
  cfg.validate();
  return cfg;
}

ClusterConfig make_paper_cluster(std::uint64_t seed) {
  // Table I: node type, model, count. Processing delays are chosen to be
  // plausible for the listed CPUs running a 2009-era TCP stack: faster
  // Xeons have lower per-message and per-byte costs; the Celeron is the
  // slowest; the Opterons sit in between. Perfectly heterogeneous: no two
  // types share parameters.
  struct TypeSpec {
    const char* label;
    double fixed_us;   // C_i in microseconds
    double per_b_ns;   // t_i in ns/byte
    double rate;       // bytes/s
    double lat_us;     // node-to-switch latency in microseconds
    int count;
  };
  // Per-byte delays exceed the 100 Mbit wire cost (80 ns/B): the TCP stack
  // (two copies + checksum) was the bottleneck on these CPUs, which is also
  // what makes the root processor — not the switch — the serialized
  // resource in the paper's collective formulas.
  const TypeSpec types[] = {
      {"Dell Poweredge SC1425 / 3.6 Xeon", 32, 88, kFastEthernet, 4, 2},
      {"Dell Poweredge 750 / 3.4 Xeon", 36, 95, kFastEthernet, 5, 6},
      {"IBM E-server 326 / 1.8 Opteron", 48, 118, kFastEthernet, 7, 2},
      {"IBM X-Series 306 / 3.2 P4", 42, 105, kFastEthernet, 6, 1},
      {"HP Proliant DL320 G3 / 3.4 P4", 40, 100, kFastEthernet, 6, 1},
      {"HP Proliant DL320 G3 / 2.9 Celeron", 75, 155, kFastEthernet, 8, 1},
      {"HP Proliant DL140 G2 / 3.4 Xeon", 34, 90, kGigabit, 3, 3},
  };
  ClusterConfig cfg;
  cfg.seed = seed;
  int type_id = 1;
  for (const auto& t : types) {
    NodeParams n;
    n.label = t.label;
    n.type = type_id;
    n.fixed_delay_s = t.fixed_us * 1e-6;
    n.per_byte_s = t.per_b_ns * 1e-9;
    n.link_rate_bps = t.rate;
    n.latency_s = t.lat_us * 1e-6;
    NodeProfile prof;
    prof.name = t.label;
    prof.params = n;
    cfg.profiles.push_back(std::move(prof));
    for (int c = 0; c < t.count; ++c)
      cfg.profile_of.push_back(type_id - 1);
    ++type_id;
  }
  cfg.materialize_profiles();
  cfg.validate();
  return cfg;
}

ClusterConfig make_homogeneous_cluster(int n, const NodeParams& node,
                                       std::uint64_t seed) {
  LMO_CHECK(n >= 2);
  ClusterConfig cfg;
  cfg.seed = seed;
  cfg.nodes.assign(std::size_t(n), node);
  for (int i = 0; i < n; ++i)
    cfg.nodes[std::size_t(i)].label = "node-" + std::to_string(i);
  cfg.validate();
  return cfg;
}

ClusterConfig make_random_cluster(int n, std::uint64_t seed) {
  LMO_CHECK(n >= 2);
  Rng rng(seed);
  ClusterConfig cfg;
  cfg.seed = seed;
  for (int i = 0; i < n; ++i) {
    NodeParams node;
    node.label = "rand-" + std::to_string(i);
    node.type = i;
    node.fixed_delay_s = rng.uniform(30e-6, 120e-6);
    // Keep t_i above the slowest wire's per-byte cost (80 ns/B) so the
    // processor, not the NIC, is the serialized resource — the regime the
    // paper's formulas (and its cluster) live in.
    node.per_byte_s = rng.uniform(85e-9, 160e-9);
    node.link_rate_bps = rng.chance(0.25) ? kGigabit : kFastEthernet;
    node.latency_s = rng.uniform(3e-6, 10e-6);
    cfg.nodes.push_back(std::move(node));
  }
  cfg.validate();
  return cfg;
}

}  // namespace lmo::sim
