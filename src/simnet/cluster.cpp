#include "simnet/cluster.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace lmo::sim {

namespace {
constexpr double kFastEthernet = 100e6 / 8.0;  // bytes/s
constexpr double kGigabit = 1000e6 / 8.0;      // bytes/s
}  // namespace

double ClusterConfig::latency(int i, int j) const {
  LMO_CHECK(i != j);
  LMO_CHECK(i >= 0 && i < size() && j >= 0 && j < size());
  return nodes[std::size_t(i)].latency_s + switch_latency_s +
         nodes[std::size_t(j)].latency_s;
}

double ClusterConfig::rate(int i, int j) const {
  LMO_CHECK(i != j);
  LMO_CHECK(i >= 0 && i < size() && j >= 0 && j < size());
  return std::min(nodes[std::size_t(i)].link_rate_bps,
                  nodes[std::size_t(j)].link_rate_bps);
}

void ClusterConfig::validate() const {
  LMO_CHECK_MSG(size() >= 2, "a cluster needs at least two nodes");
  for (const auto& n : nodes) {
    LMO_CHECK_MSG(n.fixed_delay_s >= 0, "negative fixed delay");
    LMO_CHECK_MSG(n.per_byte_s >= 0, "negative per-byte delay");
    LMO_CHECK_MSG(n.link_rate_bps > 0, "non-positive link rate");
    LMO_CHECK_MSG(n.latency_s >= 0, "negative latency");
  }
  LMO_CHECK(switch_latency_s >= 0);
  LMO_CHECK(noise_rel >= 0);
  if (quirks.enabled) {
    LMO_CHECK(quirks.escalation_min <= quirks.rendezvous_threshold);
    LMO_CHECK(quirks.escalation_values_s.size() ==
              quirks.escalation_weights.size());
  }
}

GroundTruth ground_truth(const ClusterConfig& cfg) {
  const int n = cfg.size();
  GroundTruth gt;
  gt.C.resize(std::size_t(n));
  gt.t.resize(std::size_t(n));
  gt.L.assign(std::size_t(n), std::vector<double>(std::size_t(n), 0.0));
  gt.inv_beta.assign(std::size_t(n), std::vector<double>(std::size_t(n), 0.0));
  for (int i = 0; i < n; ++i) {
    gt.C[std::size_t(i)] = cfg.nodes[std::size_t(i)].fixed_delay_s;
    gt.t[std::size_t(i)] = cfg.nodes[std::size_t(i)].per_byte_s;
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      gt.L[std::size_t(i)][std::size_t(j)] = cfg.latency(i, j);
      gt.inv_beta[std::size_t(i)][std::size_t(j)] = 1.0 / cfg.rate(i, j);
    }
  }
  return gt;
}

ClusterConfig make_paper_cluster(std::uint64_t seed) {
  // Table I: node type, model, count. Processing delays are chosen to be
  // plausible for the listed CPUs running a 2009-era TCP stack: faster
  // Xeons have lower per-message and per-byte costs; the Celeron is the
  // slowest; the Opterons sit in between. Perfectly heterogeneous: no two
  // types share parameters.
  struct TypeSpec {
    const char* label;
    double fixed_us;   // C_i in microseconds
    double per_b_ns;   // t_i in ns/byte
    double rate;       // bytes/s
    double lat_us;     // node-to-switch latency in microseconds
    int count;
  };
  // Per-byte delays exceed the 100 Mbit wire cost (80 ns/B): the TCP stack
  // (two copies + checksum) was the bottleneck on these CPUs, which is also
  // what makes the root processor — not the switch — the serialized
  // resource in the paper's collective formulas.
  const TypeSpec types[] = {
      {"Dell Poweredge SC1425 / 3.6 Xeon", 32, 88, kFastEthernet, 4, 2},
      {"Dell Poweredge 750 / 3.4 Xeon", 36, 95, kFastEthernet, 5, 6},
      {"IBM E-server 326 / 1.8 Opteron", 48, 118, kFastEthernet, 7, 2},
      {"IBM X-Series 306 / 3.2 P4", 42, 105, kFastEthernet, 6, 1},
      {"HP Proliant DL320 G3 / 3.4 P4", 40, 100, kFastEthernet, 6, 1},
      {"HP Proliant DL320 G3 / 2.9 Celeron", 75, 155, kFastEthernet, 8, 1},
      {"HP Proliant DL140 G2 / 3.4 Xeon", 34, 90, kGigabit, 3, 3},
  };
  ClusterConfig cfg;
  cfg.seed = seed;
  int type_id = 1;
  for (const auto& t : types) {
    for (int c = 0; c < t.count; ++c) {
      NodeParams n;
      n.label = t.label;
      n.type = type_id;
      n.fixed_delay_s = t.fixed_us * 1e-6;
      n.per_byte_s = t.per_b_ns * 1e-9;
      n.link_rate_bps = t.rate;
      n.latency_s = t.lat_us * 1e-6;
      cfg.nodes.push_back(std::move(n));
    }
    ++type_id;
  }
  cfg.validate();
  return cfg;
}

ClusterConfig make_homogeneous_cluster(int n, const NodeParams& node,
                                       std::uint64_t seed) {
  LMO_CHECK(n >= 2);
  ClusterConfig cfg;
  cfg.seed = seed;
  cfg.nodes.assign(std::size_t(n), node);
  for (int i = 0; i < n; ++i)
    cfg.nodes[std::size_t(i)].label = "node-" + std::to_string(i);
  cfg.validate();
  return cfg;
}

ClusterConfig make_random_cluster(int n, std::uint64_t seed) {
  LMO_CHECK(n >= 2);
  Rng rng(seed);
  ClusterConfig cfg;
  cfg.seed = seed;
  for (int i = 0; i < n; ++i) {
    NodeParams node;
    node.label = "rand-" + std::to_string(i);
    node.type = i;
    node.fixed_delay_s = rng.uniform(30e-6, 120e-6);
    // Keep t_i above the slowest wire's per-byte cost (80 ns/B) so the
    // processor, not the NIC, is the serialized resource — the regime the
    // paper's formulas (and its cluster) live in.
    node.per_byte_s = rng.uniform(85e-9, 160e-9);
    node.link_rate_bps = rng.chance(0.25) ? kGigabit : kFastEthernet;
    node.latency_s = rng.uniform(3e-6, 10e-6);
    cfg.nodes.push_back(std::move(node));
  }
  cfg.validate();
  return cfg;
}

}  // namespace lmo::sim
