// Estimation-as-a-service: the long-running core behind the lmo_served
// daemon (DESIGN.md §17).
//
// A Service owns one simulated cluster, one warm MeasurementStore and one
// published model fit, and answers batched JSON requests:
//
//   predict             model x (i, j, M) point-to-point triples through
//                       the structure-of-arrays BatchPredictor — no
//                       per-query dispatch, bit-identical to the scalar
//                       models;
//   predict_collective  price an explicit (collective, algorithm, root,
//                       M, segment, mapping) plan with the tuner's
//                       evaluator — closed forms, or the schedule-replay
//                       path under a contended topology;
//   tune                choose the best plan for one invocation
//                       (core::Tuner::decide);
//   measure             run cold experiments (planned, deduplicated,
//                       disjoint-packed; repetitions fan out on the util
//                       thread pool), refit, and publish the new fit;
//   stats / snapshot / shutdown
//                       introspection, store persistence, clean exit.
//
// Concurrency model: the fitted state is an immutable published Fit
// behind a shared_ptr — predict/predict_collective/tune run concurrently
// from any number of threads and never block each other (the
// MeasurementStore's shared/snapshot read path extends the same property
// to stats). Mutating ops (measure, snapshot) serialize on one mutex and
// swap in a fresh Fit; in-flight readers keep the fit they started with.
//
// Restart contract: the store checkpoints to --measurements-save after
// every completed measured round. A restarted daemon replays the
// estimation campaign against the checkpoint — measured rounds re-run
// with their cursor pinned to the plan-round ordinal, and the raw
// observation sweep replays all-or-nothing on the fresh anchor session —
// so every measurement, every refit, and therefore every served
// prediction is byte-identical to the uninterrupted run.
// tests/test_serve.cpp pins this end to end.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "core/batch_predict.hpp"
#include "core/tuner.hpp"
#include "estimate/empirical_estimator.hpp"
#include "estimate/experimenter.hpp"
#include "estimate/lmo_estimator.hpp"
#include "estimate/measurement_store.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "simnet/cluster.hpp"
#include "vmpi/world.hpp"

namespace lmo::serve {

inline constexpr const char* kServeSchema = "lmo.serve/1";

struct ServiceOptions {
  /// Warm start: load this measurement store before the campaign (its
  /// cluster provenance must match the config). Empty = cold start.
  std::string measurements_load;
  /// Checkpoint path: the store persists here after every completed
  /// measured round, after the observation sweep, and after every measure
  /// op — kill the daemon at any point and a restart from this file
  /// serves byte-identical predictions. Empty = no checkpoints.
  std::string measurements_save;
  /// Requests longer than this are rejected with a structured error
  /// before parsing (hostile-payload guard).
  std::size_t max_request_bytes = 8 * 1024 * 1024;
  /// Measurement options for the experimenter (jobs, fault injection).
  mpib::MeasureOptions measure;
};

/// One handled request line: the response body (a single compact JSON
/// line, no trailing newline) and whether the client asked to shut down.
struct Response {
  std::string body;
  bool shutdown = false;
};

class Service {
 public:
  /// Loads/creates the store, runs the (resume-safe) estimation campaign,
  /// and publishes the initial fit. Throws lmo::Error on an unusable
  /// config or store — startup errors are fatal, unlike request errors.
  explicit Service(sim::ClusterConfig cfg, ServiceOptions options = {});

  [[nodiscard]] int size() const { return cfg_.size(); }
  [[nodiscard]] const sim::ClusterConfig& cluster() const { return cfg_; }
  [[nodiscard]] const estimate::MeasurementStore& store() const {
    return store_;
  }
  [[nodiscard]] const core::LmoParams& params() const;
  [[nodiscard]] const core::GatherEmpirical& empirical() const;
  /// Bumped every time a refit publishes (startup = 1).
  [[nodiscard]] std::uint64_t fit_version() const;

  /// Handle one parsed request. Never throws: every failure — unknown op,
  /// missing or ill-typed field, out-of-range rank, unpriceable plan —
  /// returns {"ok": false, "error": "<named message>"}.
  [[nodiscard]] obs::Json handle(const obs::Json& request);

  /// Handle one raw request line: size cap, obs::Json::parse (its errors,
  /// byte offsets included, become structured responses), then handle().
  /// Never throws.
  [[nodiscard]] Response handle_line(std::string_view line);

  [[nodiscard]] std::uint64_t requests() const { return requests_.load(); }
  [[nodiscard]] std::uint64_t errors() const { return errors_.load(); }

 private:
  /// The immutable published fit: everything a read op needs, derived
  /// purely from the store. Readers grab the shared_ptr once and are then
  /// wait-free with respect to refits.
  struct Fit {
    core::LmoParams params;
    core::GatherEmpirical empirical;
    core::BatchPredictor batch;
    core::Tuner tuner;
    std::uint64_t version = 0;
  };

  [[nodiscard]] std::shared_ptr<const Fit> fit() const;
  void refit_and_publish();
  void run_campaign();
  /// Execute the plan's measured rounds that the store is missing, each
  /// with the round cursor pinned to `base` + its plan-round ordinal, and
  /// checkpoint after each. Returns the plan's measured-round count.
  std::uint64_t run_stage(const estimate::ExperimentPlan& plan,
                          std::uint64_t base);
  /// Replay the raw observation sweep all-or-nothing (see the restart
  /// contract above).
  void run_observation_sweep(const estimate::ExperimentPlan& plan);
  void checkpoint();

  [[nodiscard]] obs::Json op_predict(const obs::Json& req);
  [[nodiscard]] obs::Json op_predict_collective(const obs::Json& req);
  [[nodiscard]] obs::Json op_tune(const obs::Json& req);
  [[nodiscard]] obs::Json op_measure(const obs::Json& req);
  [[nodiscard]] obs::Json op_stats(const obs::Json& req);
  [[nodiscard]] obs::Json op_snapshot(const obs::Json& req);
  [[nodiscard]] core::TunedDecision decision_from(const obs::Json& req,
                                                  bool need_algorithm) const;

  sim::ClusterConfig cfg_;
  ServiceOptions options_;
  vmpi::World world_;
  estimate::SimExperimenter ex_;
  estimate::MeasurementStore store_;

  mutable std::mutex fit_mu_;  ///< guards the fit_ pointer swap only
  std::shared_ptr<const Fit> fit_;
  std::mutex mutate_mu_;  ///< serializes measure/snapshot (ex_ and refits)

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> predict_queries_{0};
  obs::Counter requests_metric_;
  obs::Counter errors_metric_;
  obs::Counter queries_metric_;
};

}  // namespace lmo::serve
