#include "serve/service.hpp"

#include <exception>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace lmo::serve {

namespace {

bool is_observation(estimate::ExperimentKind kind) {
  return kind == estimate::ExperimentKind::kScatterObservation ||
         kind == estimate::ExperimentKind::kGatherObservation;
}

obs::Json error_response(const std::string& message) {
  obs::Json j = obs::Json::object();
  j["ok"] = false;
  j["error"] = message;
  return j;
}

obs::Json ok_response(const std::string& op) {
  obs::Json j = obs::Json::object();
  j["ok"] = true;
  j["op"] = op;
  return j;
}

/// Non-negative integer field with a named error.
std::int64_t require_count(const obs::Json& v, const std::string& what) {
  const std::int64_t n = v.as_int();
  LMO_CHECK_MSG(n >= 0, what + " must be >= 0, got " + std::to_string(n));
  return n;
}

}  // namespace

Service::Service(sim::ClusterConfig cfg, ServiceOptions options)
    : cfg_(std::move(cfg)),
      options_(std::move(options)),
      world_(cfg_),
      ex_(world_, options_.measure),
      requests_metric_(obs::Registry::global().counter("serve.requests")),
      errors_metric_(obs::Registry::global().counter("serve.errors")),
      queries_metric_(
          obs::Registry::global().counter("serve.predict_queries")) {
  if (!options_.measurements_load.empty()) {
    store_ = estimate::MeasurementStore::load(options_.measurements_load);
    LMO_CHECK_MSG(
        store_.cluster_size() == 0 || store_.cluster_size() == cfg_.size(),
        "measurements were taken on a " +
            std::to_string(store_.cluster_size()) + "-node cluster, not " +
            std::to_string(cfg_.size()));
    LMO_CHECK_MSG(
        store_.cluster_size() == 0 || store_.cluster_seed() == cfg_.seed,
        "measurements were taken on cluster seed " +
            std::to_string(store_.cluster_seed()) + ", config has seed " +
            std::to_string(cfg_.seed));
    if (store_.cluster_size() == 0)
      store_.set_cluster(cfg_.size(), cfg_.seed);
  } else {
    store_.set_cluster(cfg_.size(), cfg_.seed);
  }
  run_campaign();
}

const core::LmoParams& Service::params() const { return fit()->params; }

const core::GatherEmpirical& Service::empirical() const {
  return fit()->empirical;
}

std::uint64_t Service::fit_version() const { return fit()->version; }

std::shared_ptr<const Service::Fit> Service::fit() const {
  std::lock_guard<std::mutex> lk(fit_mu_);
  return fit_;
}

void Service::checkpoint() {
  if (!options_.measurements_save.empty())
    store_.save(options_.measurements_save);
}

std::uint64_t Service::run_stage(const estimate::ExperimentPlan& plan,
                                 std::uint64_t base) {
  std::uint64_t w = 0;
  for (const estimate::PlannedRound& round : plan.rounds) {
    if (is_observation(round.kind)) continue;  // stages plan none
    bool complete = true;
    for (const estimate::ExperimentKey& key : round.keys)
      if (!store_.contains(key)) {
        complete = false;
        break;
      }
    if (!complete) {
      // Pin the cursor to the ordinal the uninterrupted run would have
      // reached, so the re-measured round derives identical seeds. The
      // store only ever checkpoints at round boundaries, so a missing
      // round is missing whole and re-runs with its full slot set.
      ex_.set_round_cursor(base + w);
      estimate::ExperimentPlan one;
      one.rounds.push_back(round);
      (void)estimate::execute_plan(one, ex_, store_);
      checkpoint();
    }
    ++w;
  }
  // Leave the cursor past the stage for whatever measures next.
  ex_.set_round_cursor(base + w);
  return w;
}

void Service::run_observation_sweep(const estimate::ExperimentPlan& plan) {
  bool complete = true;
  for (const estimate::PlannedRound& round : plan.rounds)
    for (const estimate::ExperimentKey& key : round.keys)
      if (is_observation(round.kind) && !store_.contains(key)) {
        complete = false;
        break;
      }
  // All cached: serve the sweep from the store without touching the
  // anchor session. Any gap: replay the ENTIRE sweep in plan order. The
  // anchor RNG starts from the cluster seed in every daemon process and
  // the sweep is its only consumer, so the replayed stream reproduces the
  // uninterrupted run's samples bit for bit; first-write-wins makes the
  // re-inserts of already-cached samples no-ops.
  if (complete) return;
  for (const estimate::PlannedRound& round : plan.rounds)
    for (const estimate::ExperimentKey& key : round.keys) {
      if (round.kind == estimate::ExperimentKind::kScatterObservation)
        store_.insert(key, ex_.observe_scatter(key.a, round.m_fwd));
      else if (round.kind == estimate::ExperimentKind::kGatherObservation)
        store_.insert(key, ex_.observe_gather(key.a, round.m_fwd));
    }
  checkpoint();
}

void Service::run_campaign() {
  const estimate::LmoOptions lopts;
  const sim::Topology* topo = ex_.topology();
  std::uint64_t rounds = 0;
  {
    estimate::PlanBuilder stage1(topo);
    estimate::plan_lmo_roundtrips(stage1, cfg_.size(), lopts);
    rounds = run_stage(stage1.build(lopts.parallel), 0);
  }
  {
    // Stage 2 plans from the measured round-trips, which run_stage just
    // completed; its round count (and so its cursor base) is a pure
    // function of the plan, independent of what was cached.
    estimate::PlanBuilder stage2(topo);
    estimate::plan_lmo_one_to_two(stage2, store_, cfg_.size(), lopts);
    (void)run_stage(stage2.build(lopts.parallel), rounds);
  }
  {
    estimate::PlanBuilder sweep(topo);
    estimate::plan_gather_sweep(sweep);
    run_observation_sweep(sweep.build(true));
  }
  refit_and_publish();
  checkpoint();
}

void Service::refit_and_publish() {
  estimate::LmoOptions lopts;
  lopts.topology = ex_.topology();
  estimate::LmoReport lmo = estimate::fit_lmo(store_, cfg_.size(), lopts);
  estimate::GatherEmpiricalReport gather =
      estimate::fit_gather_empirical(store_, lmo.params);
  core::TunerOptions topts;
  topts.topology = &cfg_.topology;
  std::uint64_t version = 1;
  {
    std::lock_guard<std::mutex> lk(fit_mu_);
    if (fit_) version = fit_->version + 1;
  }
  auto fresh = std::make_shared<Fit>(Fit{
      lmo.params, gather.empirical, core::BatchPredictor(lmo.params),
      core::Tuner(lmo.params, gather.empirical, topts), version});
  std::lock_guard<std::mutex> lk(fit_mu_);
  fit_ = std::move(fresh);
}

obs::Json Service::handle(const obs::Json& request) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  requests_metric_.inc();
  try {
    LMO_CHECK_MSG(request.is_object(), "request must be a JSON object");
    const obs::Json* op = request.find("op");
    LMO_CHECK_MSG(op != nullptr && op->is_string(),
                  "request needs a string \"op\"");
    const std::string& name = op->as_string();
    if (name == "predict") return op_predict(request);
    if (name == "predict_collective") return op_predict_collective(request);
    if (name == "tune") return op_tune(request);
    if (name == "measure") return op_measure(request);
    if (name == "stats") return op_stats(request);
    if (name == "snapshot") return op_snapshot(request);
    if (name == "shutdown") return ok_response("shutdown");
    throw Error("unknown op '" + name +
                "' (expected predict, predict_collective, tune, measure, "
                "stats, snapshot, or shutdown)");
  } catch (const std::exception& e) {
    // Requests must never abort the daemon: every failure — unknown op,
    // missing field, wrong type, out-of-range rank, unpriceable plan —
    // becomes a structured response.
    errors_.fetch_add(1, std::memory_order_relaxed);
    errors_metric_.inc();
    return error_response(e.what());
  }
}

Response Service::handle_line(std::string_view line) {
  Response out;
  if (line.size() > options_.max_request_bytes) {
    requests_.fetch_add(1, std::memory_order_relaxed);
    requests_metric_.inc();
    errors_.fetch_add(1, std::memory_order_relaxed);
    errors_metric_.inc();
    out.body = error_response("request of " + std::to_string(line.size()) +
                              " bytes exceeds max-request-bytes " +
                              std::to_string(options_.max_request_bytes))
                   .dump(0);
    return out;
  }
  obs::Json request;
  try {
    request = obs::Json::parse(line);
  } catch (const std::exception& e) {
    // Parse failures carry the byte offset in the message; surface it.
    requests_.fetch_add(1, std::memory_order_relaxed);
    requests_metric_.inc();
    errors_.fetch_add(1, std::memory_order_relaxed);
    errors_metric_.inc();
    out.body =
        error_response(std::string("bad request: ") + e.what()).dump(0);
    return out;
  }
  const obs::Json response = handle(request);
  const obs::Json* ok = response.find("ok");
  if (ok != nullptr && ok->is_bool() && ok->as_bool()) {
    const obs::Json* op = request.find("op");
    if (op != nullptr && op->is_string() && op->as_string() == "shutdown")
      out.shutdown = true;
  }
  out.body = response.dump(0);
  return out;
}

obs::Json Service::op_predict(const obs::Json& req) {
  const std::shared_ptr<const Fit> f = fit();
  const obs::Json* qs = req.find("queries");
  LMO_CHECK_MSG(qs != nullptr && qs->is_array(),
                "predict needs \"queries\": [[i, j, m], ...]");
  std::vector<core::BatchQuery> queries;
  queries.reserve(qs->items().size());
  for (const obs::Json& q : qs->items()) {
    core::BatchQuery b;
    if (q.is_array()) {
      LMO_CHECK_MSG(q.items().size() == 3,
                    "a query triple is [i, j, m], got " +
                        std::to_string(q.items().size()) + " elements");
      b.i = int(q[0].as_int());
      b.j = int(q[1].as_int());
      b.m = Bytes(require_count(q[2], "query message size"));
    } else {
      b.i = int(q.at("i").as_int());
      b.j = int(q.at("j").as_int());
      b.m = Bytes(require_count(q.at("m"), "query message size"));
    }
    queries.push_back(b);
  }
  f->batch.validate(queries);
  std::vector<std::string> models;
  if (const obs::Json* ms = req.find("models")) {
    for (const obs::Json& m : ms->items()) models.push_back(m.as_string());
  } else if (const obs::Json* m = req.find("model")) {
    models.push_back(m->as_string());
  } else {
    models = core::BatchPredictor::model_names();
  }
  obs::Json predictions = obs::Json::object();
  std::vector<double> seconds;
  for (const std::string& model : models) {
    f->batch.predict(model, queries, seconds);
    obs::Json arr = obs::Json::array();
    for (const double s : seconds) arr.push_back(s);
    predictions[model] = std::move(arr);
  }
  predict_queries_.fetch_add(queries.size() * models.size(),
                             std::memory_order_relaxed);
  queries_metric_.inc(queries.size() * models.size());
  obs::Json resp = ok_response("predict");
  resp["queries"] = queries.size();
  resp["predictions"] = std::move(predictions);
  resp["fit_version"] = f->version;
  return resp;
}

core::TunedDecision Service::decision_from(const obs::Json& req,
                                           bool need_algorithm) const {
  core::TunedDecision d;
  d.kind = core::parse_collective(req.at("collective").as_string());
  if (const obs::Json* a = req.find("algorithm"))
    d.algorithm = core::parse_algorithm(a->as_string());
  else
    LMO_CHECK_MSG(!need_algorithm,
                  "predict_collective needs an \"algorithm\" (use the tune "
                  "op to have one chosen)");
  if (const obs::Json* r = req.find("root"))
    d.root = int(require_count(*r, "root"));
  LMO_CHECK_MSG(d.root < cfg_.size(),
                "root " + std::to_string(d.root) + " out of range for " +
                    std::to_string(cfg_.size()) + " processors");
  d.message = Bytes(require_count(req.at("message"), "message size"));
  if (const obs::Json* s = req.find("segment"))
    d.segment = Bytes(require_count(*s, "segment size"));
  if (const obs::Json* m = req.find("mapping"))
    for (const obs::Json& rank : m->items())
      d.mapping.push_back(int(rank.as_int()));
  return d;
}

obs::Json Service::op_predict_collective(const obs::Json& req) {
  const std::shared_ptr<const Fit> f = fit();
  core::TunedDecision d = decision_from(req, /*need_algorithm=*/true);
  d.predicted_seconds = f->tuner.price(d);
  obs::Json resp = ok_response("predict_collective");
  resp["decision"] = d.to_json();
  resp["predicted_seconds"] = d.predicted_seconds;
  resp["fit_version"] = f->version;
  return resp;
}

obs::Json Service::op_tune(const obs::Json& req) {
  const std::shared_ptr<const Fit> f = fit();
  const core::TunedDecision probe = decision_from(req, false);
  const core::TunedDecision d =
      f->tuner.decide(probe.kind, probe.root, probe.message);
  obs::Json resp = ok_response("tune");
  resp["decision"] = d.to_json();
  resp["fit_version"] = f->version;
  return resp;
}

obs::Json Service::op_measure(const obs::Json& req) {
  std::lock_guard<std::mutex> lk(mutate_mu_);
  const obs::Json* exps = req.find("experiments");
  LMO_CHECK_MSG(exps != nullptr && exps->is_array(),
                "measure needs \"experiments\": [experiment-key, ...]");
  estimate::PlanBuilder builder(ex_.topology());
  for (const obs::Json& e : exps->items()) {
    const estimate::ExperimentKey key = estimate::ExperimentKey::from_json(e);
    LMO_CHECK_MSG(!is_observation(key.kind),
                  "measure cannot schedule raw observation samples (" +
                      key.describe() +
                      "): the estimation campaign owns the anchor noise "
                      "stream");
    for (const int p : key.participants())
      LMO_CHECK_MSG(p >= 0 && p < cfg_.size(),
                    "experiment participant " + std::to_string(p) +
                        " out of range for " + std::to_string(cfg_.size()) +
                        " processors: " + key.describe());
    builder.require(key);
  }
  const estimate::ExperimentPlan plan = builder.build(true);
  const estimate::ExecuteStats stats =
      estimate::execute_plan(plan, ex_, store_);
  refit_and_publish();
  checkpoint();
  obs::Json resp = ok_response("measure");
  resp["measured"] = stats.measured;
  resp["cached"] = stats.cached;
  resp["rounds"] = stats.rounds;
  resp["store_entries"] = store_.size();
  resp["fit_version"] = fit()->version;
  return resp;
}

obs::Json Service::op_stats(const obs::Json&) {
  const std::shared_ptr<const Fit> f = fit();
  const std::shared_ptr<const estimate::StoreSnapshot> snap =
      store_.snapshot();
  obs::Json resp = ok_response("stats");
  resp["schema"] = kServeSchema;
  resp["cluster_size"] = cfg_.size();
  resp["cluster_seed"] = cfg_.seed;
  resp["fit_version"] = f->version;
  obs::Json models = obs::Json::array();
  for (const std::string& m : core::BatchPredictor::model_names())
    models.push_back(m);
  resp["models"] = std::move(models);
  obs::Json store = obs::Json::object();
  store["entries"] = snap->size();
  store["quarantined"] = snap->suspect_keys.size();
  store["version"] = snap->version;
  store["hits"] = store_.hits();
  store["misses"] = store_.misses();
  resp["store"] = std::move(store);
  resp["requests"] = requests_.load(std::memory_order_relaxed);
  resp["errors"] = errors_.load(std::memory_order_relaxed);
  resp["predict_queries"] = predict_queries_.load(std::memory_order_relaxed);
  return resp;
}

obs::Json Service::op_snapshot(const obs::Json& req) {
  std::lock_guard<std::mutex> lk(mutate_mu_);
  std::string path = options_.measurements_save;
  if (const obs::Json* p = req.find("path")) path = p->as_string();
  LMO_CHECK_MSG(!path.empty(),
                "snapshot needs a \"path\" (no --measurements-save "
                "configured)");
  store_.save(path);
  obs::Json resp = ok_response("snapshot");
  resp["path"] = path;
  resp["entries"] = store_.size();
  resp["store_version"] = store_.version();
  return resp;
}

}  // namespace lmo::serve
