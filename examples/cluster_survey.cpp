// Surveying an unknown cluster: estimate all four model families on a
// randomly generated heterogeneous cluster and compare their
// point-to-point views — the workflow of the paper's software tool [13].
//
// With --hierarchical the survey runs on a resource tree instead (2
// switches x 4 nodes x 2 cores) and additionally reports the fitted
// per-level link parameters against the ground truth the simulator was
// built from.
//
// Usage: cluster_survey [--nodes N] [--seed S] [--hierarchical]
#include <iostream>

#include "estimate/experimenter.hpp"
#include "estimate/hockney_estimator.hpp"
#include "estimate/lmo_estimator.hpp"
#include "estimate/loggp_estimator.hpp"
#include "estimate/plogp_estimator.hpp"
#include "simnet/cluster.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"
#include "util/table.hpp"
#include "vmpi/world.hpp"

int main(int argc, char** argv) {
  using namespace lmo;
  const Cli cli(argc, argv, {"nodes", "seed", "hierarchical"});
  const auto seed = std::uint64_t(cli.get_int("seed", 2026));
  const bool hierarchical = cli.get_flag("hierarchical");

  const sim::ClusterConfig cluster =
      hierarchical
          ? sim::make_multicore_cluster(2, 4, 2, seed)
          : sim::make_random_cluster(int(cli.get_int("nodes", 8)), seed);
  const int n = cluster.size();
  vmpi::World world(cluster);
  estimate::SimExperimenter ex(world);

  if (hierarchical)
    std::cout << "surveying a 2 switch x 4 node x 2 core cluster (" << n
              << " ranks, seed " << seed << ")...\n";
  else
    std::cout << "surveying a " << n << "-node cluster (seed " << seed
              << ")...\n";
  const auto hockney = estimate::estimate_hockney(ex);
  const auto loggp = estimate::estimate_loggp(ex);
  estimate::PLogPOptions plogp_opts;
  plogp_opts.max_size = 64 * 1024;
  const auto plogp = estimate::estimate_plogp(ex, plogp_opts);
  const auto lmo = estimate::estimate_lmo(ex);

  Table models({"model", "parameters", "predicted pt2pt 0->1, 32 KB"});
  const Bytes m = 32 * 1024;
  models.add_row(
      {"Hockney (homogeneous)",
       "a = " + format_seconds(hockney.homogeneous.alpha) +
           ", b = " + format_seconds(hockney.homogeneous.beta) + "/B",
       format_seconds(hockney.homogeneous.pt2pt(m))});
  models.add_row({"Hockney (heterogeneous)",
                  "a_01 = " + format_seconds(hockney.hetero.alpha(0, 1)) +
                      ", b_01 = " + format_seconds(hockney.hetero.beta(0, 1)) +
                      "/B",
                  format_seconds(hockney.hetero.pt2pt(0, 1, m))});
  models.add_row(
      {"LogGP",
       "L = " + format_seconds(loggp.averaged.L) +
           ", o = " + format_seconds(loggp.averaged.o) +
           ", g = " + format_seconds(loggp.averaged.g) +
           ", G = " + format_seconds(loggp.averaged.G) + "/B",
       format_seconds(loggp.averaged.pt2pt(m))});
  models.add_row({"PLogP",
                  "L = " + format_seconds(plogp.averaged.L) + ", g(32 KB) = " +
                      format_seconds(plogp.averaged.g(double(m))),
                  format_seconds(plogp.averaged.pt2pt(m))});
  models.add_row(
      {"LMO (extended)",
       "C_0 = " + format_seconds(lmo.params.C[0]) +
           ", t_0 = " + format_seconds(lmo.params.t[0]) + "/B, L_01 = " +
           format_seconds(lmo.params.L(0, 1)) + ", 1/b_01 = " +
           format_seconds(lmo.params.inv_beta(0, 1)) + "/B",
       format_seconds(lmo.params.pt2pt(0, 1, m))});
  models.print(std::cout);

  // Reference: the measured round-trip halves.
  const double rtt = ex.roundtrip(0, 1, m, m);
  std::cout << "\nmeasured one-way time 0->1 at " << format_bytes(m) << ": "
            << format_seconds(rtt / 2) << "\n";
  std::cout << "\nper-node LMO processing parameters:\n";
  Table nodes({"node", "C_i", "t_i"});
  for (int i = 0; i < n; ++i)
    nodes.add_row({std::to_string(i),
                   format_seconds(lmo.params.C[std::size_t(i)]),
                   format_seconds(lmo.params.t[std::size_t(i)]) + "/B"});
  nodes.print(std::cout);

  if (hierarchical) {
    // The O(n^2) pair tables collapse onto one link class per tree level;
    // the fitted latency absorbs the minimal Ethernet frame's wire time
    // (64 B at the level's rate), hence the "+ frame" column.
    const auto gt = sim::ground_truth_per_level(cluster);
    std::cout << "\nper-level LMO link parameters (fitted vs ground truth):\n";
    Table levels({"level", "pairs", "fitted L", "true L + frame",
                  "fitted 1/beta", "true 1/beta"});
    for (std::size_t lv = 0; lv < lmo.params.per_level.size(); ++lv) {
      const auto& fit = lmo.params.per_level[lv];
      levels.add_row(
          {cluster.topology.level(int(lv) + 1).name,
           std::to_string(fit.pairs), format_seconds(fit.L),
           format_seconds(gt[lv].L + 64.0 * gt[lv].inv_beta),
           format_seconds(fit.inv_beta) + "/B",
           format_seconds(gt[lv].inv_beta) + "/B"});
    }
    levels.print(std::cout);
  }
  return 0;
}
