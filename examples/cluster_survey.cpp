// Surveying an unknown cluster: estimate all four model families on a
// randomly generated heterogeneous cluster and compare their
// point-to-point views — the workflow of the paper's software tool [13].
//
// Usage: cluster_survey [--nodes N] [--seed S]
#include <iostream>

#include "estimate/experimenter.hpp"
#include "estimate/hockney_estimator.hpp"
#include "estimate/lmo_estimator.hpp"
#include "estimate/loggp_estimator.hpp"
#include "estimate/plogp_estimator.hpp"
#include "simnet/cluster.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"
#include "util/table.hpp"
#include "vmpi/world.hpp"

int main(int argc, char** argv) {
  using namespace lmo;
  const Cli cli(argc, argv, {"nodes", "seed"});
  const int n = int(cli.get_int("nodes", 8));
  const auto seed = std::uint64_t(cli.get_int("seed", 2026));

  const sim::ClusterConfig cluster = sim::make_random_cluster(n, seed);
  vmpi::World world(cluster);
  estimate::SimExperimenter ex(world);

  std::cout << "surveying a " << n << "-node cluster (seed " << seed
            << ")...\n";
  const auto hockney = estimate::estimate_hockney(ex);
  const auto loggp = estimate::estimate_loggp(ex);
  estimate::PLogPOptions plogp_opts;
  plogp_opts.max_size = 64 * 1024;
  const auto plogp = estimate::estimate_plogp(ex, plogp_opts);
  const auto lmo = estimate::estimate_lmo(ex);

  Table models({"model", "parameters", "predicted pt2pt 0->1, 32 KB"});
  const Bytes m = 32 * 1024;
  models.add_row(
      {"Hockney (homogeneous)",
       "a = " + format_seconds(hockney.homogeneous.alpha) +
           ", b = " + format_seconds(hockney.homogeneous.beta) + "/B",
       format_seconds(hockney.homogeneous.pt2pt(m))});
  models.add_row({"Hockney (heterogeneous)",
                  "a_01 = " + format_seconds(hockney.hetero.alpha(0, 1)) +
                      ", b_01 = " + format_seconds(hockney.hetero.beta(0, 1)) +
                      "/B",
                  format_seconds(hockney.hetero.pt2pt(0, 1, m))});
  models.add_row(
      {"LogGP",
       "L = " + format_seconds(loggp.averaged.L) +
           ", o = " + format_seconds(loggp.averaged.o) +
           ", g = " + format_seconds(loggp.averaged.g) +
           ", G = " + format_seconds(loggp.averaged.G) + "/B",
       format_seconds(loggp.averaged.pt2pt(m))});
  models.add_row({"PLogP",
                  "L = " + format_seconds(plogp.averaged.L) + ", g(32 KB) = " +
                      format_seconds(plogp.averaged.g(double(m))),
                  format_seconds(plogp.averaged.pt2pt(m))});
  models.add_row(
      {"LMO (extended)",
       "C_0 = " + format_seconds(lmo.params.C[0]) +
           ", t_0 = " + format_seconds(lmo.params.t[0]) + "/B, L_01 = " +
           format_seconds(lmo.params.L(0, 1)) + ", 1/b_01 = " +
           format_seconds(lmo.params.inv_beta(0, 1)) + "/B",
       format_seconds(lmo.params.pt2pt(0, 1, m))});
  models.print(std::cout);

  // Reference: the measured round-trip halves.
  const double rtt = ex.roundtrip(0, 1, m, m);
  std::cout << "\nmeasured one-way time 0->1 at " << format_bytes(m) << ": "
            << format_seconds(rtt / 2) << "\n";
  std::cout << "\nper-node LMO processing parameters:\n";
  Table nodes({"node", "C_i", "t_i"});
  for (int i = 0; i < n; ++i)
    nodes.add_row({std::to_string(i),
                   format_seconds(lmo.params.C[std::size_t(i)]),
                   format_seconds(lmo.params.t[std::size_t(i)]) + "/B"});
  nodes.print(std::cout);
  return 0;
}
