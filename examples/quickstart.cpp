// Quickstart: the complete estimate -> predict -> validate loop in ~60
// lines of user code.
//
//  1. Build (or describe) a switched cluster. Here we use the paper's
//     16-node heterogeneous cluster, simulated.
//  2. Estimate the extended LMO model from timing experiments only:
//     C(n,2) round-trips plus 3*C(n,3) one-to-two experiments (eqs. 6-12).
//  3. Predict the execution time of a linear scatter with eq. (4).
//  4. Run the actual collective and compare.
#include <iostream>

#include "coll/collectives.hpp"
#include "core/predictions.hpp"
#include "estimate/experimenter.hpp"
#include "estimate/lmo_estimator.hpp"
#include "simnet/cluster.hpp"
#include "util/format.hpp"
#include "vmpi/world.hpp"

int main() {
  using namespace lmo;

  // 1. The target platform: a heterogeneous cluster behind one switch.
  const sim::ClusterConfig cluster = sim::make_paper_cluster();
  vmpi::World world(cluster);
  std::cout << "cluster: " << cluster.size() << " nodes, first node is \""
            << cluster.nodes[0].label << "\"\n";

  // 2. Estimate the LMO point-to-point parameters from experiments.
  estimate::SimExperimenter experiments(world);
  const estimate::LmoReport lmo = estimate::estimate_lmo(experiments);
  std::cout << "estimated from " << lmo.roundtrip_experiments
            << " round-trips and " << lmo.one_to_two_experiments
            << " one-to-two experiments ("
            << format_time(lmo.estimation_cost) << " of cluster time)\n";
  std::cout << "node 0: C = " << format_seconds(lmo.params.C[0])
            << ", t = " << format_seconds(lmo.params.t[0]) << "/B, L(0,1) = "
            << format_seconds(lmo.params.L(0, 1)) << "\n";

  // 3. Predict a 64 KB linear scatter from rank 0 (eq. 4).
  const Bytes block = 64 * 1024;
  const double predicted = core::linear_scatter_time(lmo.params, 0, block);

  // 4. Observe the real (simulated) collective and compare.
  const SimTime observed =
      world.run(coll::spmd(world.size(), [block](vmpi::Comm& c) {
        return coll::linear_scatter(c, 0, block);
      }));

  std::cout << "\nlinear scatter of " << format_bytes(block) << " blocks:\n"
            << "  predicted " << format_seconds(predicted) << "\n"
            << "  observed  " << format_time(observed) << "\n"
            << "  error     "
            << format_percent(std::abs(predicted - observed.seconds()) /
                              observed.seconds())
            << "\n";
  return 0;
}
