// Building an optimized gather from the LMO empirical parameters
// (the paper's Fig. 7 and HeteroMPI optimization [10]).
//
// Linear gather on TCP clusters suffers non-deterministic escalations for
// medium message sizes. This example:
//  1. estimates the LMO model and its empirical gather parameters
//     (M1, M2, escalation modes) from observations,
//  2. asks the planner whether a given gather should be split,
//  3. runs native and optimized gathers side by side.
#include <iostream>

#include "coll/collectives.hpp"
#include "core/optimize.hpp"
#include "estimate/empirical_estimator.hpp"
#include "estimate/experimenter.hpp"
#include "estimate/lmo_estimator.hpp"
#include "simnet/cluster.hpp"
#include "stats/summary.hpp"
#include "util/format.hpp"
#include "vmpi/world.hpp"

int main() {
  using namespace lmo;
  const sim::ClusterConfig cluster = sim::make_paper_cluster();
  vmpi::World world(cluster);
  estimate::SimExperimenter ex(world);

  std::cout << "estimating the LMO model and gather empirical parameters...\n";
  const auto lmo = estimate::estimate_lmo(ex);
  const auto emp_report = estimate::estimate_gather_empirical(ex, lmo.params);
  const core::GatherEmpirical& emp = emp_report.empirical;

  std::cout << "detected M1 = " << format_bytes(emp.m1)
            << ", M2 = " << format_bytes(emp.m2) << "\n";
  for (const auto& mode : emp.escalation_modes)
    std::cout << "  escalation mode " << format_seconds(mode.value)
              << " with frequency " << format_percent(mode.frequency) << "\n";

  const Bytes block = 16 * 1024;  // squarely inside the escalation band
  const auto plan = core::plan_optimized_gather(lmo.params, emp, 0, block);
  std::cout << "\ngather of " << format_bytes(block) << " blocks: ";
  if (plan.split)
    std::cout << "split into " << plan.series << " gathers of "
              << format_bytes(plan.chunk) << " (predicted "
              << format_seconds(plan.predicted_split) << " vs native "
              << format_seconds(plan.predicted_native) << ")\n";
  else
    std::cout << "run natively\n";

  stats::RunningStats native, optimized;
  const int reps = 20;
  for (int r = 0; r < reps; ++r) {
    native.add(world
                   .run(coll::spmd(world.size(),
                                   [block](vmpi::Comm& c) {
                                     return coll::linear_gather(c, 0, block);
                                   }))
                   .seconds());
    optimized.add(
        world
            .run(coll::spmd(world.size(),
                            [block, &plan](vmpi::Comm& c) {
                              return plan.split
                                         ? coll::split_gather(c, 0, block,
                                                              plan.chunk)
                                         : coll::linear_gather(c, 0, block);
                            }))
            .seconds());
  }
  std::cout << "\nover " << reps << " runs:\n"
            << "  native    mean " << format_seconds(native.mean()) << ", max "
            << format_seconds(native.max()) << "\n"
            << "  optimized mean " << format_seconds(optimized.mean())
            << ", max " << format_seconds(optimized.max()) << "\n"
            << "  speedup   " << format_fixed(native.mean() / optimized.mean(), 2)
            << "x mean, " << format_fixed(native.max() / optimized.max(), 2)
            << "x worst-case\n";
  return 0;
}
