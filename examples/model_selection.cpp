// Model-based collective algorithm selection (the paper's Fig. 6 use case).
//
// An MPI library must pick between the linear and binomial scatter
// algorithms per message size. This example estimates both a heterogeneous
// Hockney model and the LMO model on the same cluster, lets each choose,
// and scores the choices against the simulated ground truth — showing why
// a model that separates processor and network contributions picks
// correctly where Hockney does not.
#include <iostream>

#include "coll/collectives.hpp"
#include "core/optimize.hpp"
#include "core/predictions.hpp"
#include "estimate/experimenter.hpp"
#include "estimate/hockney_estimator.hpp"
#include "estimate/lmo_estimator.hpp"
#include "simnet/cluster.hpp"
#include "util/format.hpp"
#include "util/table.hpp"
#include "vmpi/world.hpp"

int main() {
  using namespace lmo;
  const sim::ClusterConfig cluster = sim::make_paper_cluster();
  vmpi::World world(cluster);
  estimate::SimExperimenter ex(world);

  std::cout << "estimating Hockney and LMO models...\n";
  const auto hockney = estimate::estimate_hockney(ex);
  const auto lmo = estimate::estimate_lmo(ex);

  auto observe = [&](bool binomial, Bytes m) {
    double total = 0;
    const int reps = 4;
    for (int r = 0; r < reps; ++r)
      total += world
                   .run(coll::spmd(world.size(),
                                   [binomial, m](vmpi::Comm& c) {
                                     return binomial
                                                ? coll::binomial_scatter(c, 0, m)
                                                : coll::linear_scatter(c, 0, m);
                                   }))
                   .seconds();
    return total / reps;
  };
  auto name = [](core::ScatterAlgorithm a) {
    return a == core::ScatterAlgorithm::kLinear ? "linear" : "binomial";
  };

  Table t({"M", "Hockney picks", "LMO picks", "true winner", "cost of a wrong pick"});
  int hockney_score = 0, lmo_score = 0, total = 0;
  for (const Bytes m : {Bytes(16), Bytes(1024), Bytes(16) * 1024,
                        Bytes(64) * 1024, Bytes(150) * 1024}) {
    const double lin = observe(false, m);
    const double bin = observe(true, m);
    const auto truth = lin <= bin ? core::ScatterAlgorithm::kLinear
                                  : core::ScatterAlgorithm::kBinomial;
    const auto h = core::choose_scatter_algorithm_hockney(hockney.hetero, 0, m);
    const auto l = core::choose_scatter_algorithm(lmo.params, 0, m);
    hockney_score += h == truth;
    lmo_score += l == truth;
    ++total;
    const double penalty = std::max(lin, bin) / std::min(lin, bin);
    t.add_row({format_bytes(m), name(h), name(l), name(truth),
               format_fixed(penalty, 2) + "x slower"});
  }
  t.print(std::cout);
  std::cout << "\nscore: Hockney " << hockney_score << "/" << total
            << ", LMO " << lmo_score << "/" << total << "\n";
  return 0;
}
