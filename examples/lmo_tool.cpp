// lmo_tool — the command-line workflow of the paper's software tool [13]:
//
//   lmo_tool make-cluster --out cluster.cfg [--nodes N] [--seed S]
//            [--switches S --nodes N --cores C]
//       write a cluster description (default: the Table-I cluster;
//       --switches makes a hierarchical S x N x C multi-core cluster);
//   lmo_tool estimate --cluster cluster.cfg --out model.cfg
//       run the LMO estimation experiments on the (simulated) cluster and
//       persist the point-to-point + empirical parameters;
//   lmo_tool predict --model model.cfg --op scatter|gather|bcast|reduce
//            [--size BYTES] [--root R]
//       predict the collective's execution time from the saved model;
//   lmo_tool tune --model model.cfg --op ... --size BYTES
//       print the tuned algorithm decision for one invocation;
//   lmo_tool estimate ... --shard i/k --measurements-save shard_i.json
//       measure only shard i of k of the estimation experiments (no fit) —
//       run all k shards (any machines, any order), merge, then re-run
//       estimate with --measurements-load merged.json for the exact model
//       a single-process run would produce;
//   lmo_tool merge shard_0.json shard_1.json ... --out merged.json
//       fold shard measurement stores into one (optionally folding the
//       shards' run reports via --reports r0.json,r1.json --report out).
//
// Byte sizes (--size) accept k/M/G suffixes (powers of 1024).
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/params_io.hpp"
#include "core/tuner.hpp"
#include "obs/exposition.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/residuals.hpp"
#include "obs/trace.hpp"
#include "estimate/empirical_estimator.hpp"
#include "estimate/experimenter.hpp"
#include "estimate/lmo_estimator.hpp"
#include "estimate/measurement_store.hpp"
#include "simnet/config_io.hpp"
#include "simnet/fault.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/format.hpp"
#include "util/thread_pool.hpp"
#include "vmpi/world.hpp"

namespace {

using namespace lmo;

int usage() {
  std::cerr << "usage: lmo_tool <make-cluster|estimate|predict|tune|merge> "
               "[options]\n  see the header comment of examples/lmo_tool.cpp\n";
  return 2;
}

int cmd_make_cluster(const Cli& cli) {
  const std::string out = cli.get("out", "cluster.cfg");
  const auto seed = std::uint64_t(cli.get_int("seed", 1));
  const int switches = int(cli.get_int("switches", 0));
  const int nodes = int(cli.get_int("nodes", 0));
  // --switches S --nodes N --cores C: a hierarchical multi-core cluster
  // (S*N*C ranks, v2 config with the resource tree — profile-compact, so
  // even a 4096-rank file stays KB-sized). --nodes alone: a flat random
  // heterogeneous cluster. Neither: the Table-I paper cluster.
  const auto cfg =
      switches > 0
          ? sim::make_multicore_cluster(switches, std::max(nodes, 1),
                                        int(cli.get_int("cores", 1)), seed)
          : nodes > 0 ? sim::make_random_cluster(nodes, seed)
                      : sim::make_paper_cluster(seed);
  sim::save_cluster(cfg, out);
  std::cout << "wrote " << cfg.size() << "-node cluster to " << out << "\n";
  return 0;
}

int cmd_estimate(const Cli& cli) {
  const auto cfg = sim::load_cluster(cli.get("cluster", "cluster.cfg"));
  const std::string out = cli.get("out", "model.cfg");
  vmpi::World world(cfg);
  world.set_trace_sink(obs::global_sink());
  // --fault-* rates (default 0 = off) exercise the recovery pipeline:
  // retries, timeouts, MAD trimming, and store quarantine.
  mpib::MeasureOptions measure;
  measure.fault = sim::fault_spec_from_cli(cli);
  estimate::SimExperimenter ex(world, measure);

  // Fidelity telemetry: --report/--fidelity-save/--fidelity-baseline turn
  // on the residual tracker; --flight-dump arms the engine flight
  // recorder. Neither changes any estimate (record-only).
  const std::string report_path = cli.get("report", "");
  const std::string fidelity_save = cli.get("fidelity-save", "");
  const std::string fidelity_baseline = cli.get("fidelity-baseline", "");
  obs::ResidualTracker residuals;
  if (!report_path.empty() || !fidelity_save.empty() ||
      !fidelity_baseline.empty())
    obs::set_global_residuals(&residuals);
  const std::string flight_path = cli.get("flight-dump", "");
  obs::FlightRecorder flight;
  if (!flight_path.empty()) ex.set_flight_recorder(&flight);

  // A warm store (--measurements-load) skips every experiment it already
  // holds; --measurements-save persists the campaign for later refits.
  const std::string load_path = cli.get("measurements-load", "");
  estimate::MeasurementStore store;
  if (!load_path.empty()) {
    store = estimate::MeasurementStore::load(load_path);
    LMO_CHECK_MSG(
        store.cluster_size() == 0 || store.cluster_size() == cfg.size(),
        "--measurements-load: store was measured on a " +
            std::to_string(store.cluster_size()) + "-node cluster, not " +
            std::to_string(cfg.size()));
    std::cout << "loaded " << store.size() << " measurements from "
              << load_path << "\n";
  } else {
    store.set_cluster(cfg.size(), cfg.seed);
  }

  // --shard i/k: measure-only mode. Execute this process's slice of the
  // measured rounds (seeds pinned to the single-process round indices),
  // persist the slice, and skip the fits — they need the full campaign.
  // Stage 2 plans from the stage-1 results, so a cold k-shard campaign is
  // two passes: every shard on the cold store, merge, every shard again on
  // the merged store; then a final estimate --measurements-load runs
  // entirely cached and fits the bit-identical model.
  const std::string shard_text = cli.get("shard", "");
  const std::string save_path = cli.get("measurements-save", "");
  if (!shard_text.empty()) {
    const auto shard = estimate::ShardSpec::parse(shard_text);
    LMO_CHECK_MSG(!save_path.empty(),
                  "--shard requires --measurements-save: the shard's slice "
                  "must be persisted for merging");
    const estimate::LmoOptions lopts;
    const sim::Topology* topo = ex.topology();
    {
      estimate::PlanBuilder stage1(topo);
      estimate::plan_lmo_roundtrips(stage1, cfg.size(), lopts);
      (void)estimate::execute_plan(stage1.build(lopts.parallel), ex, store,
                                   shard);
    }
    bool stage1_done = true;
    for (const auto& [i, j] : estimate::all_pairs(cfg.size()))
      if (!store.contains(estimate::ExperimentKey::roundtrip(i, j, 0, 0)) ||
          !store.contains(estimate::ExperimentKey::roundtrip(
              i, j, lopts.probe_size, lopts.probe_size))) {
        stage1_done = false;
        break;
      }
    if (stage1_done) {
      estimate::PlanBuilder stage2(topo);
      estimate::plan_lmo_one_to_two(stage2, store, cfg.size(), lopts);
      (void)estimate::execute_plan(stage2.build(lopts.parallel), ex, store,
                                   shard);
      // The gather sweep is raw observations on the anchor session —
      // identical in every process (measured rounds never touch the
      // anchor), so it runs unsharded and merges bit-equal.
      estimate::PlanBuilder sweep(topo);
      estimate::plan_gather_sweep(sweep);
      (void)estimate::execute_plan(sweep.build(true), ex, store);
    } else {
      std::cout << "shard " << shard.index << "/" << shard.count
                << ": stage-1 round-trips incomplete; merge the shard "
                   "stores and re-run each shard on the merged store\n";
    }
    store.save(save_path);
    std::cout << "shard " << shard.index << "/" << shard.count << ": saved "
              << store.size() << " measurements to " << save_path << "\n";
    vmpi::publish_metrics(world.metrics(), obs::Registry::global());
    obs::set_global_residuals(nullptr);
    return 0;
  }

  std::cout << "running estimation experiments on " << cfg.size()
            << " nodes...\n";
  const auto lmo = estimate::estimate_lmo(ex, store);
  const auto emp = estimate::estimate_gather_empirical(ex, store, lmo.params);
  core::save_params(lmo.params, emp.empirical, out);
  if (!save_path.empty()) {
    store.save(save_path);
    std::cout << "saved " << store.size() << " measurements to " << save_path
              << "\n";
  }
  vmpi::publish_metrics(world.metrics(), obs::Registry::global());
  if (!report_path.empty()) {
    obs::ReportBuilder report("lmo_tool");
    report.provenance("seed", std::int64_t(cfg.seed));
    report.provenance("jobs", cli.get_int("jobs", 0));
    report.set("cluster", cli.get("cluster", "cluster.cfg"));
    obs::Json est = obs::Json::object();
    est["lmo"] = core::params_json(lmo.params);
    est["gather_empirical"] = core::empirical_json(emp.empirical);
    report.set("estimated_parameters", std::move(est));
    obs::Json cost = obs::Json::object();
    cost["roundtrip_experiments"] = lmo.roundtrip_experiments;
    cost["one_to_two_experiments"] = lmo.one_to_two_experiments;
    cost["world_runs"] = lmo.world_runs;
    cost["cost_seconds"] = lmo.estimation_cost.seconds();
    cost["store_entries"] = store.size();
    cost["store_hits"] = store.hits();
    report.set("estimation_cost", std::move(cost));
    if (residuals.recorded() > 0)
      report.set("fidelity", residuals.to_json());
    if (flight.has_dump()) report.set("flight", flight.to_json());
    report.set("degradation",
               obs::degradation_json(obs::Registry::global().snapshot()));
    report.write(report_path);
    std::cout << "report: " << report_path << "\n";
  }
  int rc = 0;
  if (!fidelity_save.empty()) {
    residuals.save(fidelity_save);
    std::cout << "fidelity: " << fidelity_save << "\n";
  }
  if (!fidelity_baseline.empty()) {
    const auto failures = obs::fidelity_drift(
        obs::load_fidelity(fidelity_baseline), residuals.to_json());
    for (const std::string& f : failures)
      std::cout << "fidelity-baseline: FAIL " << f << "\n";
    if (failures.empty()) std::cout << "fidelity-baseline: OK\n";
    rc = failures.empty() ? 0 : 1;
  }
  if (!flight_path.empty()) {
    flight.save(flight_path);
    std::cout << "flight: " << flight_path
              << (flight.degraded() ? " (degraded)" : "") << "\n";
  }
  const std::string metrics_path = cli.get("metrics-out", "");
  if (!metrics_path.empty()) {
    obs::Exposition exposition(metrics_path);
    exposition.flush();
    std::cout << "metrics: " << metrics_path << "\n";
  }
  obs::set_global_residuals(nullptr);
  std::cout << "estimated from " << lmo.roundtrip_experiments
            << " round-trips + " << lmo.one_to_two_experiments
            << " one-to-two experiments (" << format_time(lmo.estimation_cost)
            << " simulated); wrote model to " << out << "\n"
            << "gather band: M1 = " << format_bytes(emp.empirical.m1)
            << ", M2 = " << format_bytes(emp.empirical.m2) << "\n";
  return rc;
}

/// Fold shard measurement stores (positional paths) into --out. With
/// --reports r0.json,r1.json and --report out.json, the shards' run
/// reports are folded too: estimation-cost fields summed, per-shard
/// provenance listed.
int cmd_merge(const Cli& cli) {
  const std::vector<std::string>& inputs = cli.positional();
  LMO_CHECK_MSG(!inputs.empty(),
                "merge needs at least one shard store path");
  const std::string out = cli.get("out", "");
  LMO_CHECK_MSG(!out.empty(), "merge requires --out");
  estimate::MeasurementStore merged =
      estimate::MeasurementStore::load(inputs[0]);
  for (std::size_t i = 1; i < inputs.size(); ++i)
    merged.merge_from(estimate::MeasurementStore::load(inputs[i]));
  merged.save(out);
  std::cout << "merged " << inputs.size() << " shard stores ("
            << merged.size() << " entries, " << merged.quarantined_count()
            << " quarantined) into " << out << "\n";

  const std::string reports = cli.get("reports", "");
  const std::string report_out = cli.get("report", "");
  if (!reports.empty()) {
    LMO_CHECK_MSG(!report_out.empty(),
                  "merge --reports requires --report for the folded output");
    obs::Json shards = obs::Json::array();
    obs::Json cost = obs::Json::object();
    std::string rest = reports;
    while (!rest.empty()) {
      const auto comma = rest.find(',');
      const std::string path = rest.substr(0, comma);
      rest = comma == std::string::npos ? "" : rest.substr(comma + 1);
      if (path.empty()) continue;
      std::ifstream in(path);
      LMO_CHECK_MSG(in.good(), "cannot read run report " + path);
      std::ostringstream text;
      text << in.rdbuf();
      const obs::Json report = obs::Json::parse(text.str());
      obs::Json entry = obs::Json::object();
      entry["path"] = path;
      if (const obs::Json* prov = report.find("provenance"))
        entry["provenance"] = *prov;
      shards.push_back(std::move(entry));
      if (const obs::Json* c = report.find("estimation_cost"))
        for (const auto& [key, value] : c->entries()) {
          const double prior =
              cost.find(key) != nullptr ? cost.at(key).as_double() : 0.0;
          cost[key] = prior + value.as_double();
        }
    }
    obs::ReportBuilder folded("lmo_tool merge");
    folded.set("shards", std::move(shards));
    folded.set("estimation_cost", std::move(cost));
    folded.set("merged_store", out);
    folded.set("entries", std::int64_t(merged.size()));
    folded.write(report_out);
    std::cout << "report: " << report_out << "\n";
  }
  return 0;
}

int cmd_predict(const Cli& cli) {
  const auto loaded = core::load_params(cli.get("model", "model.cfg"));
  const auto kind = core::parse_collective(cli.get("op", "scatter"));
  const Bytes m = cli.get_bytes("size", 65536);
  const int root = int(cli.get_int("root", 0));
  double prediction = 0.0;
  switch (kind) {
    case core::CollectiveKind::kScatter:
      prediction = core::linear_scatter_time(loaded.params, root, m);
      break;
    case core::CollectiveKind::kGather:
      prediction = core::linear_gather_time(loaded.params, loaded.empirical,
                                            root, m)
                       .expected();
      break;
    case core::CollectiveKind::kBcast:
      prediction = core::linear_bcast_time(loaded.params, root, m);
      break;
    case core::CollectiveKind::kReduce:
      prediction = core::linear_reduce_time(loaded.params, root, m);
      break;
  }
  std::cout << cli.get("op", "scatter") << " of " << format_bytes(m)
            << " from root " << root << ": predicted "
            << format_seconds(prediction) << " (linear algorithm)\n";
  return 0;
}

int cmd_tune(const Cli& cli) {
  const auto loaded = core::load_params(cli.get("model", "model.cfg"));
  const auto kind = core::parse_collective(cli.get("op", "scatter"));
  const Bytes m = cli.get_bytes("size", 65536);
  const int root = int(cli.get_int("root", 0));
  const core::Tuner tuner(loaded.params, loaded.empirical);
  const auto d = tuner.decide(kind, root, m);
  std::cout << cli.get("op", "scatter") << " of " << format_bytes(m) << ": "
            << d.describe() << ", predicted "
            << format_seconds(d.predicted_seconds) << "\n";
  if (!d.mapping.empty()) {
    std::cout << "mapping (virtual -> physical):";
    for (const int p : d.mapping) std::cout << " " << p;
    std::cout << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    std::vector<std::string> known = {
        "out", "cluster", "model", "op", "size", "root",
        "nodes", "switches", "cores", "seed", "jobs", "report", "trace",
        "measurements-load", "measurements-save", "shard", "reports",
        "fidelity-save", "fidelity-baseline", "flight-dump", "metrics-out"};
    for (const std::string& f : lmo::sim::fault_cli_options())
      known.push_back(f);
    const lmo::Cli cli(argc - 1, argv + 1, std::move(known));
    // --jobs N: parallel experiment sessions (default: hardware
    // concurrency). Estimates are bit-identical for any value.
    lmo::set_default_jobs(int(cli.get_int("jobs", 0)));
    const std::string trace_path = cli.get("trace", "");
    if (!trace_path.empty()) lmo::obs::set_global_trace_enabled(true);
    int rc = 2;
    if (command == "make-cluster")
      rc = cmd_make_cluster(cli);
    else if (command == "estimate")
      rc = cmd_estimate(cli);
    else if (command == "predict")
      rc = cmd_predict(cli);
    else if (command == "tune")
      rc = cmd_tune(cli);
    else if (command == "merge")
      rc = cmd_merge(cli);
    else
      return usage();
    if (!trace_path.empty()) {
      if (lmo::obs::TraceSink* sink = lmo::obs::global_sink()) {
        sink->save(trace_path);
        std::cout << "trace: " << trace_path << "\n";
      }
    }
    return rc;
  } catch (const lmo::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
