// Inspecting the gather escalations with World tracing: run a medium-size
// linear gather repeatedly with per-message tracing enabled and print the
// per-message timeline of the worst run — the paper's Section V
// irregularity made visible message by message.
#include <algorithm>
#include <iostream>

#include "coll/collectives.hpp"
#include "simnet/cluster.hpp"
#include "util/format.hpp"
#include "util/table.hpp"
#include "vmpi/world.hpp"

int main() {
  using namespace lmo;
  const Bytes block = 32 * 1024;  // inside the escalation band
  vmpi::World world(sim::make_paper_cluster());
  world.set_tracing(true);

  // Find the worst run out of a handful.
  double worst = 0;
  std::vector<vmpi::MessageTrace> worst_trace;
  for (int rep = 0; rep < 12; ++rep) {
    const double t = world
                         .run(coll::spmd(world.size(),
                                         [block](vmpi::Comm& c) {
                                           return coll::linear_gather(c, 0,
                                                                      block);
                                         }))
                         .seconds();
    if (t > worst) {
      worst = t;
      worst_trace = world.trace();
    }
  }
  std::cout << "worst of 12 gathers of " << format_bytes(block) << ": "
            << format_seconds(worst) << "\n\n";

  // Expected wire+processing time per message, to flag escalations.
  const auto& cfg = world.config();
  Table t({"src", "posted", "arrived", "done", "transfer", "note"});
  for (const auto& m : worst_trace) {
    const double nominal =
        cfg.nodes[std::size_t(m.src)].fixed_delay_s +
        double(m.bytes) * cfg.nodes[std::size_t(m.src)].per_byte_s +
        cfg.latency(m.src, m.dst) + double(m.bytes) / cfg.rate(m.src, m.dst);
    const double transfer = (m.arrival - m.send_post).seconds();
    const bool escalated = transfer > nominal + 0.02;
    t.add_row({std::to_string(m.src), format_time(m.send_post),
               format_time(m.arrival), format_time(m.recv_complete),
               format_seconds(transfer),
               escalated ? "ESCALATED (+TCP retransmit)" : ""});
  }
  t.print(std::cout);

  int escalated = 0;
  for (const auto& m : worst_trace)
    if ((m.arrival - m.send_post).seconds() >
        0.02 + cfg.latency(m.src, m.dst) +
            double(m.bytes) * (cfg.nodes[std::size_t(m.src)].per_byte_s +
                               1.0 / cfg.rate(m.src, m.dst)))
      ++escalated;
  std::cout << "\n" << escalated << " of " << worst_trace.size()
            << " messages escalated; the root's sequential receive loop "
               "stalls behind each one —\nwhich is why the split-gather "
               "optimization (examples/optimized_gather) pays off.\n";
  return 0;
}
