// The full model-driven tuning workflow (the paper's software tool [13]):
// estimate the LMO model and the empirical gather band once, build a
// Tuner, and let it pick an (algorithm, segment, mapping) plan from the
// collective zoo for every invocation. Each decision is executed through
// coll::run_decision — the exact schedule the tuner priced — and scored
// against the naive default (linear algorithm, default mapping, no
// segmentation).
#include <iostream>

#include "coll/zoo.hpp"
#include "core/tuner.hpp"
#include "estimate/empirical_estimator.hpp"
#include "estimate/experimenter.hpp"
#include "estimate/lmo_estimator.hpp"
#include "simnet/cluster.hpp"
#include "util/format.hpp"
#include "util/table.hpp"
#include "vmpi/world.hpp"

int main() {
  using namespace lmo;
  const sim::ClusterConfig cluster = sim::make_paper_cluster();
  vmpi::World world(cluster);
  estimate::SimExperimenter ex(world);

  std::cout << "estimating the LMO model and gather empirical band...\n";
  const auto lmo = estimate::estimate_lmo(ex);
  const auto emp = estimate::estimate_gather_empirical(ex, lmo.params);
  const core::Tuner tuner(lmo.params, emp.empirical);

  auto observe = [&](const std::function<vmpi::Task(vmpi::Comm&)>& body) {
    double total = 0;
    const int reps = 6;
    for (int r = 0; r < reps; ++r)
      total += world.run(coll::spmd(world.size(), body)).seconds();
    return total / reps;
  };

  struct Case {
    core::CollectiveKind kind;
    Bytes m;
  };
  const Case cases[] = {
      {core::CollectiveKind::kScatter, 512},
      {core::CollectiveKind::kScatter, 150 * 1024},
      {core::CollectiveKind::kGather, 24 * 1024},
      {core::CollectiveKind::kBcast, 16 * 1024},
      {core::CollectiveKind::kBcast, 256 * 1024},
      {core::CollectiveKind::kReduce, 2 * 1024},
  };

  Table t({"collective", "M", "tuner plan", "default [ms]", "tuned [ms]",
           "gain"});
  for (const Case& cs : cases) {
    const auto d = tuner.decide(cs.kind, 0, cs.m);
    auto tuned_body = [d](vmpi::Comm& c) -> vmpi::Task {
      // NB: `co_await (cond ? taskA : taskB)` is avoided throughout —
      // GCC 12 destroys the materialized Task temporary too early.
      co_await coll::run_decision(c, d);
    };
    core::TunedDecision naive;
    naive.kind = cs.kind;
    naive.algorithm = core::AlgorithmId::kLinear;
    naive.message = cs.m;
    auto default_body = [naive](vmpi::Comm& c) -> vmpi::Task {
      co_await coll::run_decision(c, naive);
    };
    const double base = observe(default_body);
    const double tuned = observe(tuned_body);
    t.add_row({core::collective_name(cs.kind), format_bytes(cs.m),
               d.describe(), format_fixed(base * 1e3, 3),
               format_fixed(tuned * 1e3, 3),
               format_fixed(base / tuned, 2) + "x"});
  }
  t.print(std::cout);

  // Where the chosen algorithm flips across the size sweep — the grid scan
  // reports every switch point, not just the first.
  for (const auto kind :
       {core::CollectiveKind::kScatter, core::CollectiveKind::kBcast}) {
    const auto flips = tuner.crossovers(kind, 0, 8, 256 * 1024);
    std::cout << "\n" << core::collective_name(kind) << " crossovers:";
    if (flips.empty()) std::cout << " none";
    for (const Bytes f : flips) std::cout << " " << format_bytes(f);
  }
  std::cout << "\n";
  return 0;
}
