// The full model-driven tuning workflow (the paper's software tool [13]):
// estimate the LMO model and the empirical gather band once, build a
// Tuner, and let it pick an algorithm, mapping, and split plan for every
// collective invocation. Each decision is executed and scored against the
// naive default (linear algorithm, default mapping, no splitting).
#include <iostream>

#include "coll/collectives.hpp"
#include "core/tuner.hpp"
#include "estimate/empirical_estimator.hpp"
#include "estimate/experimenter.hpp"
#include "estimate/lmo_estimator.hpp"
#include "simnet/cluster.hpp"
#include "util/format.hpp"
#include "util/table.hpp"
#include "vmpi/world.hpp"

int main() {
  using namespace lmo;
  const sim::ClusterConfig cluster = sim::make_paper_cluster();
  vmpi::World world(cluster);
  estimate::SimExperimenter ex(world);

  std::cout << "estimating the LMO model and gather empirical band...\n";
  const auto lmo = estimate::estimate_lmo(ex);
  const auto emp = estimate::estimate_gather_empirical(ex, lmo.params);
  const core::Tuner tuner(lmo.params, emp.empirical);

  auto observe = [&](const std::function<vmpi::Task(vmpi::Comm&)>& body) {
    double total = 0;
    const int reps = 6;
    for (int r = 0; r < reps; ++r)
      total += world.run(coll::spmd(world.size(), body)).seconds();
    return total / reps;
  };

  struct Case {
    core::CollectiveKind kind;
    const char* name;
    Bytes m;
  };
  const Case cases[] = {
      {core::CollectiveKind::kScatter, "scatter", 512},
      {core::CollectiveKind::kScatter, "scatter", 150 * 1024},
      {core::CollectiveKind::kGather, "gather", 24 * 1024},
      {core::CollectiveKind::kBcast, "bcast", 16 * 1024},
      {core::CollectiveKind::kReduce, "reduce", 2 * 1024},
  };

  Table t({"collective", "M", "tuner plan", "default [ms]", "tuned [ms]",
           "gain"});
  for (const Case& cs : cases) {
    const auto d = tuner.decide(cs.kind, 0, cs.m);
    const auto mapping = d.mapping;
    auto tuned_body = [cs, d, mapping](vmpi::Comm& c) -> vmpi::Task {
      switch (cs.kind) {
        case core::CollectiveKind::kScatter:
          // NB: `co_await (cond ? taskA : taskB)` is avoided throughout —
          // GCC 12 destroys the materialized Task temporary too early.
          if (d.algorithm == core::ScatterAlgorithm::kLinear)
            co_await coll::linear_scatter(c, 0, cs.m);
          else
            co_await coll::binomial_scatter(c, 0, cs.m, mapping);
          break;
        case core::CollectiveKind::kGather:
          if (d.split_chunk > 0)
            co_await coll::split_gather(c, 0, cs.m, d.split_chunk);
          else if (d.algorithm == core::ScatterAlgorithm::kLinear)
            co_await coll::linear_gather(c, 0, cs.m);
          else
            co_await coll::binomial_gather(c, 0, cs.m, mapping);
          break;
        case core::CollectiveKind::kBcast:
          if (d.algorithm == core::ScatterAlgorithm::kLinear)
            co_await coll::linear_bcast(c, 0, cs.m);
          else
            co_await coll::binomial_bcast(c, 0, cs.m);
          break;
        case core::CollectiveKind::kReduce:
          if (d.algorithm == core::ScatterAlgorithm::kLinear)
            co_await coll::linear_reduce(c, 0, cs.m);
          else
            co_await coll::binomial_reduce(c, 0, cs.m);
          break;
      }
    };
    auto default_body = [cs](vmpi::Comm& c) -> vmpi::Task {
      switch (cs.kind) {
        case core::CollectiveKind::kScatter:
          co_await coll::linear_scatter(c, 0, cs.m);
          break;
        case core::CollectiveKind::kGather:
          co_await coll::linear_gather(c, 0, cs.m);
          break;
        case core::CollectiveKind::kBcast:
          co_await coll::linear_bcast(c, 0, cs.m);
          break;
        case core::CollectiveKind::kReduce:
          co_await coll::linear_reduce(c, 0, cs.m);
          break;
      }
    };
    const double base = observe(default_body);
    const double tuned = observe(tuned_body);
    t.add_row({cs.name, format_bytes(cs.m), d.describe(),
               format_fixed(base * 1e3, 3), format_fixed(tuned * 1e3, 3),
               format_fixed(base / tuned, 2) + "x"});
  }
  t.print(std::cout);

  const Bytes cross =
      tuner.crossover(core::CollectiveKind::kScatter, 0, 8, 256 * 1024);
  std::cout << "\nscatter linear/binomial crossover: "
            << (cross > 0 ? format_bytes(cross) : std::string("none"))
            << "\n";
  return 0;
}
